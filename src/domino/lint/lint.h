// domino-lint: whole-config semantic analysis for the causal-graph DSL.
//
// LintConfigText runs the full pipeline over a config file:
//   1. multi-error parse (ParseConfigChecked, which itself folds in the
//      expression front-end's syntax/type/range/unit diagnostics),
//   2. chain-node resolution against built-ins, custom events, and the base
//      graph, with did-you-mean suggestions (DL208/DL209),
//   3. config-level structure checks: duplicate chains, unused events,
//       2-node chains, role conflicts with the base graph (DL210-DL212,
//      DL302),
//   4. graph-level checks on the extended graph when nothing above errored:
//      cycles with the offending path (DL301) and dead nodes that sit on no
//      cause -> consequence chain (DL303).
//
// See DESIGN.md §7 for the full diagnostic catalog.
#pragma once

#include <string>

#include "domino/config_parser.h"
#include "domino/graph.h"
#include "domino/lint/diagnostics.h"

namespace domino::analysis::lint {

struct LintOptions {
  /// Graph the config extends. Null: the paper's default graph when
  /// `use_default_graph`, else an empty graph (stand-alone config).
  const CausalGraph* base_graph = nullptr;
  bool use_default_graph = true;
  bool check_graph = true;  ///< Run the DL301/DL303 graph pass.
  EventThresholds thresholds;
};

struct LintResult {
  DominoConfigFile config;  ///< Whatever parsed cleanly (best effort).
  DiagnosticSink sink;      ///< All diagnostics, sorted by position.
};

LintResult LintConfigText(const std::string& text,
                          const LintOptions& opts = {});

/// Structural checks on an already-built graph: DL301 cycle (with path),
/// DL302 node-kind conflicts, DL303 dead nodes. Spans are empty — a built
/// graph has no source text. `check_kinds` is off when the caller already
/// reported role conflicts with source spans.
void LintGraph(const CausalGraph& graph, DiagnosticSink& sink,
               bool check_kinds = true);

/// Promotes every warning to an error (strict mode).
void PromoteWarnings(DiagnosticSink& sink);

}  // namespace domino::analysis::lint
