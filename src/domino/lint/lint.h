// domino-lint: whole-config semantic analysis for the causal-graph DSL.
//
// LintConfigText runs the full pipeline over a config file:
//   1. multi-error parse (ParseConfigChecked, which itself folds in the
//      expression front-end's syntax/type/range/unit diagnostics),
//   2. chain-node resolution against built-ins, custom events, and the base
//      graph, with did-you-mean suggestions (DL208/DL209),
//   3. config-level structure checks: duplicate chains, unused events,
//       2-node chains, role conflicts with the base graph (DL210-DL212,
//      DL302),
//   4. semantic verification (verify.h): the DL401-DL407 abstract
//      interpretation pass over the declared telemetry schema,
//   5. graph-level checks on the extended graph when nothing above errored:
//      cycles with the offending path (DL301) and dead nodes that sit on no
//      cause -> consequence chain (DL303), with source spans threaded in
//      from the chain declarations (GraphSpans).
//
// See DESIGN.md §7 and §12 for the full diagnostic catalog.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "domino/config_parser.h"
#include "domino/graph.h"
#include "domino/lint/diagnostics.h"
#include "domino/lint/verify.h"

namespace domino::analysis::lint {

struct LintOptions {
  /// Graph the config extends. Null: the paper's default graph when
  /// `use_default_graph`, else an empty graph (stand-alone config).
  const CausalGraph* base_graph = nullptr;
  bool use_default_graph = true;
  bool check_graph = true;  ///< Run the DL301/DL303 graph pass.
  bool verify = true;       ///< Run the DL401-DL407 verification pass.
  VerifyOptions verify_options;
  EventThresholds thresholds;
};

struct LintResult {
  DominoConfigFile config;  ///< Whatever parsed cleanly (best effort).
  DiagnosticSink sink;      ///< All diagnostics, sorted by position.
};

LintResult LintConfigText(const std::string& text,
                          const LintOptions& opts = {});

/// Source locations for graph entities, collected from the chain
/// declarations that created them. Lets the graph pass attach real spans
/// to DL301/DL302/DL303 instead of location-free diagnostics.
struct GraphSpans {
  /// Node name -> span of its first appearance in a chain.
  std::map<std::string, SourceSpan> nodes;
  /// (from, to) node names -> name_span of the declaring chain.
  std::map<std::pair<std::string, std::string>, SourceSpan> edges;
};

/// Structural checks on an already-built graph: DL301 cycle (with path),
/// DL302 node-kind conflicts, DL303 dead nodes. With `spans`, DL301 points
/// at the last chain contributing a cycle edge, DL302/DL303 at the node's
/// declaration, and DL303 reports only span-mapped (config-declared)
/// nodes; without, spans are empty — a built graph has no source text.
/// `check_kinds` is off when the caller already reported role conflicts
/// with source spans.
void LintGraph(const CausalGraph& graph, DiagnosticSink& sink,
               bool check_kinds = true, const GraphSpans* spans = nullptr);

/// Promotes every warning to an error (strict mode).
void PromoteWarnings(DiagnosticSink& sink);

}  // namespace domino::analysis::lint
