#include "domino/lint/interval.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace domino::analysis::lint {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string FormatNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}
}  // namespace

Interval::Interval() : lo(-kInf), hi(kInf) {}

Interval::Interval(double l, double h) : lo(std::min(l, h)), hi(std::max(l, h)) {}

Interval Interval::HullWith(double v) const {
  return {std::min(lo, v), std::max(hi, v)};
}

Interval Union(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval Add(const Interval& a, const Interval& b) {
  double lo = a.lo + b.lo;
  double hi = a.hi + b.hi;
  if (std::isnan(lo) || std::isnan(hi)) return {};
  return {lo, hi};
}

Interval Sub(const Interval& a, const Interval& b) {
  double lo = a.lo - b.hi;
  double hi = a.hi - b.lo;
  if (std::isnan(lo) || std::isnan(hi)) return {};
  return {lo, hi};
}

Interval Mul(const Interval& a, const Interval& b) {
  const double c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  double lo = c[0];
  double hi = c[0];
  for (double v : c) {
    if (std::isnan(v)) return {};
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (std::isnan(lo) || std::isnan(hi)) return {};
  return {lo, hi};
}

Interval Neg(const Interval& a) { return {-a.hi, -a.lo}; }

Interval Div(const Interval& a, const Interval& b) {
  if (!b.IsExact() || b.lo == 0 || !std::isfinite(b.lo)) return {};
  double lo = a.lo / b.lo;
  double hi = a.hi / b.lo;
  if (std::isnan(lo) || std::isnan(hi)) return {};
  return {lo, hi};
}

std::string FormatInterval(const Interval& r) {
  return "[" + FormatNum(r.lo) + ", " + FormatNum(r.hi) + "]";
}

Tri TriNot(Tri a) {
  if (a == Tri::kMaybe) return Tri::kMaybe;
  return a == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

Tri TriAnd(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kMaybe;
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kMaybe;
}

Tri Truth(const Interval& r) {
  if (r.lo == 0 && r.hi == 0) return Tri::kFalse;
  if (!r.Contains(0)) return Tri::kTrue;
  return Tri::kMaybe;
}

Tri FoldCmp(CmpOp op, const Interval& a, const Interval& b) {
  switch (op) {
    case CmpOp::kLt:
      if (a.hi < b.lo) return Tri::kTrue;
      if (a.lo >= b.hi) return Tri::kFalse;
      return Tri::kMaybe;
    case CmpOp::kLe:
      if (a.hi <= b.lo) return Tri::kTrue;
      if (a.lo > b.hi) return Tri::kFalse;
      return Tri::kMaybe;
    case CmpOp::kGt:
      if (a.lo > b.hi) return Tri::kTrue;
      if (a.hi <= b.lo) return Tri::kFalse;
      return Tri::kMaybe;
    case CmpOp::kGe:
      if (a.lo >= b.hi) return Tri::kTrue;
      if (a.hi < b.lo) return Tri::kFalse;
      return Tri::kMaybe;
    case CmpOp::kEq:
      if (a.IsExact() && b.IsExact() && a.lo == b.lo) return Tri::kTrue;
      if (a.hi < b.lo || b.hi < a.lo) return Tri::kFalse;
      return Tri::kMaybe;
    case CmpOp::kNe:
      if (a.hi < b.lo || b.hi < a.lo) return Tri::kTrue;
      if (a.IsExact() && b.IsExact() && a.lo == b.lo) return Tri::kFalse;
      return Tri::kMaybe;
  }
  return Tri::kMaybe;
}

Constraint::Constraint() : lo(-kInf), hi(kInf) {}

Constraint Constraint::FromCmp(CmpOp op, double c) {
  Constraint out;
  switch (op) {
    case CmpOp::kLt: out.hi = c; out.hi_strict = true; break;
    case CmpOp::kLe: out.hi = c; break;
    case CmpOp::kGt: out.lo = c; out.lo_strict = true; break;
    case CmpOp::kGe: out.lo = c; break;
    case CmpOp::kEq: out.lo = c; out.hi = c; break;
    case CmpOp::kNe: break;  // not representable; callers keep kNe opaque
  }
  return out;
}

bool Constraint::Implies(const Constraint& weaker) const {
  // Lower bound containment: ours must be at least as tight.
  bool lo_ok = lo > weaker.lo ||
               (lo == weaker.lo && (lo_strict || !weaker.lo_strict));
  bool hi_ok = hi < weaker.hi ||
               (hi == weaker.hi && (hi_strict || !weaker.hi_strict));
  return lo_ok && hi_ok;
}

Constraint Constraint::Intersect(const Constraint& other) const {
  Constraint out;
  if (lo > other.lo || (lo == other.lo && lo_strict)) {
    out.lo = lo;
    out.lo_strict = lo_strict;
  } else {
    out.lo = other.lo;
    out.lo_strict = other.lo_strict;
  }
  if (hi < other.hi || (hi == other.hi && hi_strict)) {
    out.hi = hi;
    out.hi_strict = hi_strict;
  } else {
    out.hi = other.hi;
    out.hi_strict = other.hi_strict;
  }
  return out;
}

bool Constraint::IsEmpty() const {
  return lo > hi || (lo == hi && (lo_strict || hi_strict));
}

}  // namespace domino::analysis::lint
