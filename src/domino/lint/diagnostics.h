// Diagnostics engine for domino-lint (and any later static-analysis pass):
// a Diagnostic carries a stable code, a severity, a 1-based source span, a
// human message, and an optional fix-it replacement; a DiagnosticSink
// collects many of them per run (the front-ends recover and resynchronize
// instead of throwing on the first problem); the renderers produce
// compiler-style text with caret/underline source excerpts, or a stable
// JSON document for CI.
//
// The diagnostic-code catalog lives in lint.h (DESIGN.md §7 documents it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace domino::analysis::lint {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

std::string ToString(Severity severity);

/// Half-open 1-based source range on one line. line == 0 means "no source
/// location" (e.g. graph-level findings); renderers then omit the excerpt.
struct SourceSpan {
  int line = 0;
  int col = 0;
  int length = 0;  ///< Characters to underline; 0 renders a bare caret.

  [[nodiscard]] bool valid() const { return line > 0 && col > 0; }
  bool operator==(const SourceSpan&) const = default;
};

struct Diagnostic {
  std::string code;  ///< Stable catalog code, e.g. "DL102".
  Severity severity = Severity::kError;
  SourceSpan span;
  std::string message;
  std::string fixit;   ///< Suggested replacement for the span; empty = none.
  std::string detail;  ///< Secondary "note:" line (evidence); empty = none.
};

/// Collects diagnostics across a whole run. Front-ends emit into a sink and
/// keep going; callers decide afterwards whether errors are fatal.
class DiagnosticSink {
 public:
  void Add(Diagnostic d);
  void Error(std::string code, SourceSpan span, std::string message,
             std::string fixit = "");
  void Warning(std::string code, SourceSpan span, std::string message,
               std::string fixit = "");
  void Note(std::string code, SourceSpan span, std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] std::size_t warning_count() const { return warnings_; }
  [[nodiscard]] bool has_errors() const { return errors_ > 0; }
  /// kNote for an empty sink.
  [[nodiscard]] Severity max_severity() const;

  /// Stable sort by (line, col); no-location diagnostics sort last.
  void SortByPosition();

  /// Moves every diagnostic into `out`, rebasing spans onto config
  /// coordinates: expression-local line 1 / column c becomes `line` /
  /// `col_offset + c - 1`. Used to embed expression diagnostics in the
  /// config line that contains the expression.
  void DrainInto(DiagnosticSink& out, int line, int col_offset);

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

/// Renders one diagnostic in compiler style:
///
///   bad.domino:3:20: error[DL102]: unknown 5G series 'owd' in scope 'fwd'
///     event big: max(fwd.owd) > 10
///                        ^~~
///     fix-it: replace with 'owd_ms'
///
/// `source_lines` indexes the linted text (see SplitLines); an empty
/// filename drops the "file:" prefix.
std::string RenderDiagnostic(const Diagnostic& d,
                             const std::vector<std::string>& source_lines,
                             const std::string& filename = "");

/// Renders every diagnostic in position order, followed by a one-line
/// "N error(s), M warning(s)" summary (omitted when the sink is empty).
std::string RenderDiagnostics(const DiagnosticSink& sink,
                              const std::string& source_text,
                              const std::string& filename = "");

/// Stable machine-readable form for CI:
///   {"diagnostics":[{"code":...,"severity":...,"line":...,"col":...,
///    "length":...,"message":...,"fixit":...,"detail":...}],
///    "errors":N,"warnings":M}
std::string FormatDiagnosticsJson(const DiagnosticSink& sink);

std::vector<std::string> SplitLines(const std::string& text);

}  // namespace domino::analysis::lint
