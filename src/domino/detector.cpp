#include "domino/detector.h"

namespace domino::analysis {

std::vector<ChainInstance> AnalysisResult::AllChains() const {
  std::vector<ChainInstance> out;
  for (const auto& w : windows) {
    out.insert(out.end(), w.chains.begin(), w.chains.end());
  }
  return out;
}

Detector::Detector(CausalGraph graph, DominoConfig cfg)
    : graph_(std::move(graph)), cfg_(cfg) {
  graph_.Validate();
  chains_ = graph_.EnumerateChains();
}

WindowResult Detector::AnalyzeWindow(const telemetry::DerivedTrace& trace,
                                     Time begin) const {
  WindowResult result;
  result.begin = begin;
  Time end = begin + cfg_.window;

  if (cfg_.extract_features) {
    result.features = ExtractFeatures(trace, begin, end, cfg_.thresholds);
  }

  for (int p = 0; p < 2; ++p) {
    WindowContext ctx(trace, begin, end, p);
    auto& active = result.node_active[static_cast<std::size_t>(p)];
    active.resize(graph_.node_count());
    for (std::size_t n = 0; n < graph_.node_count(); ++n) {
      active[n] = graph_.node(static_cast<int>(n)).detect(ctx);
    }
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      bool all = true;
      for (int node : chains_[c]) {
        if (!active[static_cast<std::size_t>(node)]) {
          all = false;
          break;
        }
      }
      if (all) {
        result.chains.push_back(
            ChainInstance{begin, p, static_cast<int>(c)});
      }
    }
  }
  return result;
}

AnalysisResult Detector::Analyze(const telemetry::DerivedTrace& trace) const {
  AnalysisResult result;
  result.trace_duration = trace.end - trace.begin;
  if (trace.end <= trace.begin + cfg_.window) return result;
  for (Time t = trace.begin; t + cfg_.window <= trace.end;
       t += cfg_.step) {
    result.windows.push_back(AnalyzeWindow(trace, t));
  }
  return result;
}

}  // namespace domino::analysis
