#include "domino/detector.h"

#include "domino/incremental.h"

namespace domino::analysis {

std::vector<ChainInstance> AnalysisResult::AllChains() const {
  std::vector<ChainInstance> out;
  for (const auto& w : windows) {
    out.insert(out.end(), w.chains.begin(), w.chains.end());
  }
  return out;
}

Detector::Detector(CausalGraph graph, DominoConfig cfg)
    : graph_(std::move(graph)), cfg_(cfg) {
  graph_.Validate();
  chains_ = graph_.EnumerateChains();
  node_shares_memo_.resize(graph_.node_count(), 0);
  for (std::size_t n = 0; n < graph_.node_count(); ++n) {
    const Node& node = graph_.node(static_cast<int>(n));
    node_shares_memo_[n] = node.builtin.has_value() &&
                           node.builtin_thresholds.has_value() &&
                           *node.builtin_thresholds == cfg_.thresholds;
  }
}

WindowResult Detector::AnalyzeWindow(const telemetry::DerivedTrace& trace,
                                     Time begin) const {
  return AnalyzeWindow(trace, begin, nullptr);
}

WindowResult Detector::AnalyzeWindow(const telemetry::DerivedTrace& trace,
                                     Time begin,
                                     WindowStatsCache* cache) const {
  WindowResult result;
  result.begin = begin;
  Time end = begin + cfg_.window;

  if (cache != nullptr) {
    cache->BeginWindow(begin, end);
    cache->set_memo_thresholds(&cfg_.thresholds);
  }

  if (cfg_.extract_features) {
    result.features =
        ExtractFeatures(trace, begin, end, cfg_.thresholds, cache);
  }

  for (int p = 0; p < 2; ++p) {
    WindowContext ctx(trace, begin, end, p, cache);
    auto& active = result.node_active[static_cast<std::size_t>(p)];
    active.resize(graph_.node_count());
    for (std::size_t n = 0; n < graph_.node_count(); ++n) {
      const Node& node = graph_.node(static_cast<int>(n));
      // Memo-sharing nodes go through DetectEvent with the detector's own
      // thresholds so their result is computed once per window even when
      // the same event also appears in the feature vector or other nodes.
      active[n] = node_shares_memo_[n]
                      ? DetectEvent(*node.builtin, ctx, cfg_.thresholds)
                      : node.detect(ctx);
    }
    // Per-node data-quality confidence for this window: min coverage over
    // the streams the node's condition reads — RequiredStreams for
    // built-ins, the declared/inferred custom_streams mask for DSL nodes.
    // A zero custom mask means "unknown" and stays at 1 (no downgrade).
    // Pure trace arithmetic — identical on the naive and incremental paths.
    std::vector<double> node_conf;
    if (trace.quality.present) {
      node_conf.resize(graph_.node_count(), 1.0);
      for (std::size_t n = 0; n < graph_.node_count(); ++n) {
        const Node& node = graph_.node(static_cast<int>(n));
        StreamMask mask =
            node.builtin.has_value()
                ? RequiredStreams(*node.builtin, p)
                : node.custom_streams[static_cast<std::size_t>(p)];
        if (mask == 0) continue;
        double conf = 1.0;
        for (std::size_t s = 0; s < telemetry::kStreamCount; ++s) {
          if ((mask & (1u << s)) == 0) continue;
          conf = std::min(
              conf, trace.quality.WindowCoverage(
                        static_cast<telemetry::StreamId>(s), begin, end));
        }
        node_conf[n] = conf;
      }
    }
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      bool all = true;
      for (int node : chains_[c]) {
        if (!active[static_cast<std::size_t>(node)]) {
          all = false;
          break;
        }
      }
      if (all) {
        double conf = 1.0;
        if (!node_conf.empty()) {
          for (int node : chains_[c]) {
            conf = std::min(conf, node_conf[static_cast<std::size_t>(node)]);
          }
        }
        result.chains.push_back(
            ChainInstance{begin, p, static_cast<int>(c), conf});
      }
    }
  }
  return result;
}

std::vector<WindowResult> Detector::AnalyzeWindows(
    const telemetry::DerivedTrace& trace,
    const std::vector<Time>& begins) const {
  std::vector<WindowResult> windows(begins.size());
  int threads = EffectiveThreads(cfg_.threads, begins.size());
  ParallelChunks(begins.size(), threads, [&](std::size_t b, std::size_t e) {
    // One cache per contiguous chunk keeps every cursor monotone; chunks
    // write disjoint slots, so the merged order is deterministic.
    std::unique_ptr<WindowStatsCache> cache;
    if (cfg_.incremental) cache = std::make_unique<WindowStatsCache>(trace);
    for (std::size_t i = b; i < e; ++i) {
      windows[i] = AnalyzeWindow(trace, begins[i], cache.get());
    }
  });
  return windows;
}

AnalysisResult Detector::Analyze(const telemetry::DerivedTrace& trace) const {
  AnalysisResult result;
  result.trace_duration = trace.end - trace.begin;
  if (trace.end <= trace.begin) return result;
  std::vector<Time> begins;
  if (trace.begin + cfg_.window >= trace.end) {
    // Shorter than (or exactly) one window: analyse the single truncated
    // window instead of dropping the capture.
    begins.push_back(trace.begin);
  } else {
    for (Time t = trace.begin; t + cfg_.window <= trace.end;
         t += cfg_.step) {
      begins.push_back(t);
    }
  }
  result.windows = AnalyzeWindows(trace, begins);
  return result;
}

}  // namespace domino::analysis
