#include "domino/events.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/stats.h"

namespace domino::analysis {

namespace {

struct NameEntry {
  EventType type;
  const char* name;
};

constexpr std::array<NameEntry, 20> kNames = {{
    {EventType::kInboundFpsDrop, "inbound_fps_drop"},
    {EventType::kOutboundFpsDrop, "outbound_fps_drop"},
    {EventType::kResolutionDrop, "resolution_drop"},
    {EventType::kJitterBufferDrain, "jitter_buffer_drain"},
    {EventType::kTargetBitrateDrop, "target_bitrate_drop"},
    {EventType::kGccOveruse, "gcc_overuse"},
    {EventType::kPushbackDrop, "pushback_drop"},
    {EventType::kCwndFull, "cwnd_full"},
    {EventType::kOutstandingUp, "outstanding_up"},
    {EventType::kPushbackNeqTarget, "pushback_neq_target"},
    {EventType::kFwdDelayUp, "fwd_delay_up"},
    {EventType::kRevDelayUp, "rev_delay_up"},
    {EventType::kTbsDrop, "tbs_drop"},
    {EventType::kRateGap, "rate_gap"},
    {EventType::kCrossTraffic, "cross_traffic"},
    {EventType::kChannelDegrade, "channel_degrade"},
    {EventType::kHarqRetx, "harq_retx"},
    {EventType::kRlcRetx, "rlc_retx"},
    {EventType::kUlScheduling, "ul_scheduling"},
    {EventType::kRrcChange, "rrc_change"},
}};

/// Downtrend with a relative threshold: some consecutive pair drops by more
/// than `frac` of the earlier value.
bool HasRelativeDrop(const WindowView<double>& v, double frac) {
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    if (v[i + 1].value < v[i].value * (1.0 - frac)) return true;
  }
  return false;
}

bool BucketedUptrend(const WindowView<double>& v, int bucket, double factor) {
  auto means = BucketMeans(v, static_cast<std::size_t>(bucket));
  for (std::size_t k = 0; k + 1 < means.size(); ++k) {
    if (means[k + 1] > means[k] * factor) return true;
  }
  return false;
}

/// Frame-rate drop (conditions 1 & 2): max > high, min < low, and the
/// maximum occurs before the minimum.
bool FpsDrop(const WindowView<double>& v, const EventThresholds& th) {
  if (v.empty()) return false;
  if (v.Max() <= th.fps_high || v.Min() >= th.fps_low) return false;
  return v.ArgMax() < v.ArgMin();
}

/// Paired element-wise comparison between two series sampled on the same
/// ticks (e.g. outstanding bytes vs congestion window).
template <typename Pred>
bool AnyPaired(const WindowView<double>& a, const WindowView<double>& b,
               Pred pred) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(a[i].value, b[i].value)) return true;
  }
  return false;
}

bool DelayUptrend(const WindowView<double>& v, const EventThresholds& th) {
  if (v.empty()) return false;
  if (v.Max() <= th.delay_up_min_ms) return false;
  return BucketedUptrend(v, th.trend_bucket, 1.0);
}

bool ChannelDegrade(const WindowView<double>& mcs, Time begin,
                    const EventThresholds& th) {
  auto buckets = TimeBucketMeans(mcs, begin, th.mcs_bucket);
  if (buckets.empty()) return false;
  double p90 = Percentile(buckets, 90.0);
  if (p90 >= th.mcs_p90_max) return false;
  int low = 0;
  for (double b : buckets) {
    if (b < th.mcs_low) ++low;
  }
  return low > th.mcs_low_count;
}

bool RateGap(const WindowView<double>& app, const WindowView<double>& tbs,
             const EventThresholds& th) {
  std::size_t n = std::min(app.size(), tbs.size());
  if (n == 0) return false;
  std::size_t gap = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (app[i].value > tbs[i].value) ++gap;
  }
  return static_cast<double>(gap) > th.rate_gap_frac * static_cast<double>(n);
}

bool CrossTraffic(const WindowView<double>& self,
                  const WindowView<double>& other,
                  const EventThresholds& th) {
  double other_sum = other.Sum();
  if (other_sum < th.cross_traffic_min_prbs) return false;
  return other_sum > th.cross_traffic_frac * self.Sum();
}

}  // namespace

std::string ToString(EventType type) {
  for (const auto& e : kNames) {
    if (e.type == type) return e.name;
  }
  return "unknown";
}

std::string ToString(const EventRef& ref) {
  std::string s = ToString(ref.type);
  if (ref.leg == PathLeg::kRev) s += "@rev";
  return s;
}

std::optional<EventType> EventTypeFromName(const std::string& name) {
  for (const auto& e : kNames) {
    if (name == e.name) return e.type;
  }
  return std::nullopt;
}

bool DetectEvent(const EventRef& ref, const WindowContext& ctx,
                 const EventThresholds& th) {
  // Direction-scoped events default to the forward leg when unqualified.
  PathLeg leg = ref.leg == PathLeg::kNone ? PathLeg::kFwd : ref.leg;
  const auto& dir = ctx.Dir(leg);
  const auto& snd = ctx.Sender();
  const auto& rcv = ctx.Receiver();

  switch (ref.type) {
    case EventType::kInboundFpsDrop:
      return FpsDrop(ctx.View(rcv.inbound_fps), th);
    case EventType::kOutboundFpsDrop:
      return FpsDrop(ctx.View(snd.outbound_fps), th);
    case EventType::kResolutionDrop:
      return ctx.View(snd.outbound_resolution).HasDecreasingStep();
    case EventType::kJitterBufferDrain:
      return ctx.View(rcv.jitter_buffer_ms)
          .Any([&](double v) { return v <= th.jb_drain_ms; });
    case EventType::kTargetBitrateDrop:
      return HasRelativeDrop(ctx.View(snd.target_bitrate_bps),
                             th.bitrate_drop_frac);
    case EventType::kGccOveruse:
      return ctx.View(snd.overuse).Any([](double v) { return v > 0.5; });
    case EventType::kPushbackDrop:
      // A pushback-rate reduction distinct from the bandwidth estimator:
      // the rate must both drop and diverge below the target bitrate
      // (otherwise the pushback controller is just following the target).
      return HasRelativeDrop(ctx.View(snd.pushback_bitrate_bps),
                             th.bitrate_drop_frac) &&
             AnyPaired(ctx.View(snd.target_bitrate_bps),
                       ctx.View(snd.pushback_bitrate_bps),
                       [](double t, double p) { return p < 0.99 * t; });
    case EventType::kCwndFull:
      return AnyPaired(ctx.View(snd.outstanding_bytes),
                       ctx.View(snd.cwnd_bytes),
                       [](double o, double w) { return w > 0 && o > w; });
    case EventType::kOutstandingUp:
      return BucketedUptrend(ctx.View(snd.outstanding_bytes),
                             th.trend_bucket, th.outstanding_up_frac);
    case EventType::kPushbackNeqTarget:
      return AnyPaired(
          ctx.View(snd.target_bitrate_bps),
          ctx.View(snd.pushback_bitrate_bps),
          [](double t, double p) { return std::fabs(t - p) > 1e-3 * t; });
    case EventType::kFwdDelayUp:
      return DelayUptrend(ctx.View(ctx.Dir(PathLeg::kFwd).owd_ms), th);
    case EventType::kRevDelayUp:
      return DelayUptrend(ctx.View(ctx.Dir(PathLeg::kRev).owd_ms), th);
    case EventType::kTbsDrop: {
      auto v = ctx.View(dir.tbs_bytes);
      if (v.empty()) return false;
      return v.Min() < th.tbs_drop_frac * v.Max();
    }
    case EventType::kRateGap:
      return RateGap(ctx.View(dir.app_bitrate_bps),
                     ctx.View(dir.tbs_bitrate_bps), th);
    case EventType::kCrossTraffic:
      return CrossTraffic(ctx.View(dir.prb_self), ctx.View(dir.prb_other),
                          th);
    case EventType::kChannelDegrade:
      return ChannelDegrade(ctx.View(dir.mcs), ctx.begin(), th);
    case EventType::kHarqRetx:
      return static_cast<int>(ctx.View(dir.harq_retx).size()) >
             th.harq_retx_count;
    case EventType::kRlcRetx:
      return ctx.trace().has_gnb_log && !ctx.View(dir.rlc_retx).empty();
    case EventType::kUlScheduling:
      // True when this leg rides the 5G uplink and actually carried data.
      return ctx.DirIndex(leg) == 0 && !ctx.View(dir.prb_self).empty();
    case EventType::kRrcChange: {
      auto v = ctx.View(dir.rnti);
      if (v.size() < 2) return false;
      return v.Min() != v.Max();
    }
  }
  return false;
}

}  // namespace domino::analysis
