#include "domino/events.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/stats.h"
#include "domino/incremental.h"

namespace domino::analysis {

// ---------------------------------------------------------------------------
// WindowContext aggregate helpers: cursor-backed when a cache is attached,
// computed from the sliced window otherwise (the naive path).
// ---------------------------------------------------------------------------

WindowView<double> WindowContext::View(const TimeSeries<double>& s) const {
  return cache_ ? cache_->View(s) : s.Window(begin_, end_);
}
std::size_t WindowContext::SeriesCount(const TimeSeries<double>& s) const {
  return cache_ ? cache_->Count(s) : View(s).size();
}
double WindowContext::SeriesMin(const TimeSeries<double>& s) const {
  return cache_ ? cache_->Min(s) : View(s).Min();
}
double WindowContext::SeriesMax(const TimeSeries<double>& s) const {
  return cache_ ? cache_->Max(s) : View(s).Max();
}
Time WindowContext::SeriesArgMin(const TimeSeries<double>& s) const {
  return cache_ ? cache_->ArgMin(s) : View(s).ArgMin();
}
Time WindowContext::SeriesArgMax(const TimeSeries<double>& s) const {
  return cache_ ? cache_->ArgMax(s) : View(s).ArgMax();
}
double WindowContext::SeriesSum(const TimeSeries<double>& s) const {
  return cache_ ? cache_->Sum(s) : View(s).Sum();
}
double WindowContext::SeriesMean(const TimeSeries<double>& s) const {
  if (!cache_) return View(s).Mean();
  return cache_->Sum(s) / static_cast<double>(cache_->Count(s));
}
std::size_t WindowContext::SeriesCountBelow(const TimeSeries<double>& s,
                                            double x) const {
  if (cache_) return cache_->CountCmp(s, CountOp::kBelow, x);
  return View(s).CountIf([x](double v) { return v < x; });
}
std::size_t WindowContext::SeriesCountAbove(const TimeSeries<double>& s,
                                            double x) const {
  if (cache_) return cache_->CountCmp(s, CountOp::kAbove, x);
  return View(s).CountIf([x](double v) { return v > x; });
}
std::vector<double> WindowContext::SeriesTimeBuckets(
    const TimeSeries<double>& s, Duration width) const {
  if (cache_) return cache_->TimeBuckets(s, width);
  return TimeBucketMeans(View(s), begin_, width);
}

namespace {

struct NameEntry {
  EventType type;
  const char* name;
};

constexpr std::array<NameEntry, 20> kNames = {{
    {EventType::kInboundFpsDrop, "inbound_fps_drop"},
    {EventType::kOutboundFpsDrop, "outbound_fps_drop"},
    {EventType::kResolutionDrop, "resolution_drop"},
    {EventType::kJitterBufferDrain, "jitter_buffer_drain"},
    {EventType::kTargetBitrateDrop, "target_bitrate_drop"},
    {EventType::kGccOveruse, "gcc_overuse"},
    {EventType::kPushbackDrop, "pushback_drop"},
    {EventType::kCwndFull, "cwnd_full"},
    {EventType::kOutstandingUp, "outstanding_up"},
    {EventType::kPushbackNeqTarget, "pushback_neq_target"},
    {EventType::kFwdDelayUp, "fwd_delay_up"},
    {EventType::kRevDelayUp, "rev_delay_up"},
    {EventType::kTbsDrop, "tbs_drop"},
    {EventType::kRateGap, "rate_gap"},
    {EventType::kCrossTraffic, "cross_traffic"},
    {EventType::kChannelDegrade, "channel_degrade"},
    {EventType::kHarqRetx, "harq_retx"},
    {EventType::kRlcRetx, "rlc_retx"},
    {EventType::kUlScheduling, "ul_scheduling"},
    {EventType::kRrcChange, "rrc_change"},
}};

/// Downtrend with a relative threshold: some consecutive pair drops by more
/// than `frac` of the earlier value.
bool HasRelativeDrop(const WindowView<double>& v, double frac) {
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    if (v[i + 1].value < v[i].value * (1.0 - frac)) return true;
  }
  return false;
}

bool BucketedUptrend(const WindowView<double>& v, int bucket, double factor) {
  auto means = BucketMeans(v, static_cast<std::size_t>(bucket));
  for (std::size_t k = 0; k + 1 < means.size(); ++k) {
    if (means[k + 1] > means[k] * factor) return true;
  }
  return false;
}

/// Frame-rate drop (conditions 1 & 2): max > high, min < low, and the
/// maximum occurs before the minimum.
bool FpsDrop(const WindowContext& ctx, const TimeSeries<double>& s,
             const EventThresholds& th) {
  if (ctx.SeriesCount(s) == 0) return false;
  if (ctx.SeriesMax(s) <= th.fps_high || ctx.SeriesMin(s) >= th.fps_low) {
    return false;
  }
  return ctx.SeriesArgMax(s) < ctx.SeriesArgMin(s);
}

/// Paired element-wise comparison between two series sampled on the same
/// ticks (e.g. outstanding bytes vs congestion window).
template <typename Pred>
bool AnyPaired(const WindowView<double>& a, const WindowView<double>& b,
               Pred pred) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(a[i].value, b[i].value)) return true;
  }
  return false;
}

bool DelayUptrend(const WindowContext& ctx, const TimeSeries<double>& s,
                  const EventThresholds& th) {
  // The O(1) max gate prunes the O(n) bucketed-trend scan in quiet windows.
  if (ctx.SeriesCount(s) == 0) return false;
  if (ctx.SeriesMax(s) <= th.delay_up_min_ms) return false;
  return BucketedUptrend(ctx.View(s), th.trend_bucket, 1.0);
}

bool ChannelDegrade(const WindowContext& ctx, const TimeSeries<double>& mcs,
                    const EventThresholds& th) {
  auto buckets = ctx.SeriesTimeBuckets(mcs, th.mcs_bucket);
  if (buckets.empty()) return false;
  double p90 = Percentile(buckets, 90.0);
  if (p90 >= th.mcs_p90_max) return false;
  int low = 0;
  for (double b : buckets) {
    if (b < th.mcs_low) ++low;
  }
  return low > th.mcs_low_count;
}

bool RateGap(const WindowView<double>& app, const WindowView<double>& tbs,
             const EventThresholds& th) {
  std::size_t n = std::min(app.size(), tbs.size());
  if (n == 0) return false;
  std::size_t gap = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (app[i].value > tbs[i].value) ++gap;
  }
  return static_cast<double>(gap) > th.rate_gap_frac * static_cast<double>(n);
}

bool CrossTraffic(const WindowContext& ctx, const TimeSeries<double>& self,
                  const TimeSeries<double>& other,
                  const EventThresholds& th) {
  double other_sum = ctx.SeriesSum(other);
  if (other_sum < th.cross_traffic_min_prbs) return false;
  return other_sum > th.cross_traffic_frac * ctx.SeriesSum(self);
}

bool DetectEventImpl(EventType type, PathLeg leg, const WindowContext& ctx,
                     const EventThresholds& th) {
  const auto& dir = ctx.Dir(leg);
  const auto& snd = ctx.Sender();
  const auto& rcv = ctx.Receiver();

  switch (type) {
    case EventType::kInboundFpsDrop:
      return FpsDrop(ctx, rcv.inbound_fps, th);
    case EventType::kOutboundFpsDrop:
      return FpsDrop(ctx, snd.outbound_fps, th);
    case EventType::kResolutionDrop:
      return ctx.View(snd.outbound_resolution).HasDecreasingStep();
    case EventType::kJitterBufferDrain:
      // "Any sample <= drain threshold" == "window minimum <= threshold".
      return ctx.SeriesCount(rcv.jitter_buffer_ms) > 0 &&
             ctx.SeriesMin(rcv.jitter_buffer_ms) <= th.jb_drain_ms;
    case EventType::kTargetBitrateDrop:
      return HasRelativeDrop(ctx.View(snd.target_bitrate_bps),
                             th.bitrate_drop_frac);
    case EventType::kGccOveruse:
      // "Any sample > 0.5" == "window maximum > 0.5".
      return ctx.SeriesCount(snd.overuse) > 0 &&
             ctx.SeriesMax(snd.overuse) > 0.5;
    case EventType::kPushbackDrop:
      // A pushback-rate reduction distinct from the bandwidth estimator:
      // the rate must both drop and diverge below the target bitrate
      // (otherwise the pushback controller is just following the target).
      return HasRelativeDrop(ctx.View(snd.pushback_bitrate_bps),
                             th.bitrate_drop_frac) &&
             AnyPaired(ctx.View(snd.target_bitrate_bps),
                       ctx.View(snd.pushback_bitrate_bps),
                       [](double t, double p) { return p < 0.99 * t; });
    case EventType::kCwndFull:
      return AnyPaired(ctx.View(snd.outstanding_bytes),
                       ctx.View(snd.cwnd_bytes),
                       [](double o, double w) { return w > 0 && o > w; });
    case EventType::kOutstandingUp:
      return BucketedUptrend(ctx.View(snd.outstanding_bytes),
                             th.trend_bucket, th.outstanding_up_frac);
    case EventType::kPushbackNeqTarget:
      return AnyPaired(
          ctx.View(snd.target_bitrate_bps),
          ctx.View(snd.pushback_bitrate_bps),
          [](double t, double p) { return std::fabs(t - p) > 1e-3 * t; });
    case EventType::kFwdDelayUp:
      return DelayUptrend(ctx, ctx.Dir(PathLeg::kFwd).owd_ms, th);
    case EventType::kRevDelayUp:
      return DelayUptrend(ctx, ctx.Dir(PathLeg::kRev).owd_ms, th);
    case EventType::kTbsDrop:
      return ctx.SeriesCount(dir.tbs_bytes) > 0 &&
             ctx.SeriesMin(dir.tbs_bytes) <
                 th.tbs_drop_frac * ctx.SeriesMax(dir.tbs_bytes);
    case EventType::kRateGap:
      return RateGap(ctx.View(dir.app_bitrate_bps),
                     ctx.View(dir.tbs_bitrate_bps), th);
    case EventType::kCrossTraffic:
      return CrossTraffic(ctx, dir.prb_self, dir.prb_other, th);
    case EventType::kChannelDegrade:
      return ChannelDegrade(ctx, dir.mcs, th);
    case EventType::kHarqRetx:
      return static_cast<int>(ctx.SeriesCount(dir.harq_retx)) >
             th.harq_retx_count;
    case EventType::kRlcRetx:
      return ctx.trace().has_gnb_log && ctx.SeriesCount(dir.rlc_retx) > 0;
    case EventType::kUlScheduling:
      // True when this leg rides the 5G uplink and actually carried data.
      return ctx.DirIndex(leg) == 0 && ctx.SeriesCount(dir.prb_self) > 0;
    case EventType::kRrcChange:
      return ctx.SeriesCount(dir.rnti) >= 2 &&
             ctx.SeriesMin(dir.rnti) != ctx.SeriesMax(dir.rnti);
  }
  return false;
}

}  // namespace

std::string ToString(EventType type) {
  for (const auto& e : kNames) {
    if (e.type == type) return e.name;
  }
  return "unknown";
}

std::string ToString(const EventRef& ref) {
  std::string s = ToString(ref.type);
  if (ref.leg == PathLeg::kRev) s += "@rev";
  return s;
}

std::optional<EventType> EventTypeFromName(const std::string& name) {
  for (const auto& e : kNames) {
    if (name == e.name) return e.type;
  }
  return std::nullopt;
}

std::vector<std::string> KnownEventNames() {
  std::vector<std::string> out;
  out.reserve(kNames.size());
  for (const auto& e : kNames) out.emplace_back(e.name);
  return out;
}

bool DetectEvent(const EventRef& ref, const WindowContext& ctx,
                 const EventThresholds& th) {
  // Direction-scoped events default to the forward leg when unqualified.
  PathLeg leg = ref.leg == PathLeg::kNone ? PathLeg::kFwd : ref.leg;
  // Per-window memo: the same built-in evaluated by the feature extractor
  // and by several graph nodes is detected once. Valid only for the
  // thresholds instance the owning detector registered (matched by
  // address — graph nodes carrying their own copies bypass the memo).
  WindowStatsCache* cache = ctx.cache();
  bool memo = cache != nullptr && cache->memo_thresholds() == &th;
  if (memo) {
    if (auto hit = cache->LookupEvent(ref.type, leg, ctx.sender_client())) {
      return *hit;
    }
  }
  bool value = DetectEventImpl(ref.type, leg, ctx, th);
  if (memo) cache->StoreEvent(ref.type, leg, ctx.sender_client(), value);
  return value;
}

namespace {

StreamMask Bit(telemetry::StreamId id) {
  return static_cast<StreamMask>(1u << static_cast<unsigned>(id));
}

StreamMask StatsBit(int client) {
  return Bit(client == telemetry::kUeClient
                 ? telemetry::StreamId::kStatsUe
                 : telemetry::StreamId::kStatsRemote);
}

}  // namespace

StreamMask RequiredStreams(const EventRef& ref, int sender_client) {
  using S = telemetry::StreamId;
  switch (ref.type) {
    // Receiver-side playback signals.
    case EventType::kInboundFpsDrop:
    case EventType::kJitterBufferDrain:
      return StatsBit(1 - sender_client);
    // Sender-side GCC internals.
    case EventType::kOutboundFpsDrop:
    case EventType::kResolutionDrop:
    case EventType::kTargetBitrateDrop:
    case EventType::kGccOveruse:
    case EventType::kPushbackDrop:
    case EventType::kCwndFull:
    case EventType::kOutstandingUp:
    case EventType::kPushbackNeqTarget:
      return StatsBit(sender_client);
    // Packet-trace signals.
    case EventType::kFwdDelayUp:
    case EventType::kRevDelayUp:
      return Bit(S::kPackets);
    // App rate (packets) vs allocated rate (DCI).
    case EventType::kRateGap:
      return static_cast<StreamMask>(Bit(S::kPackets) | Bit(S::kDci));
    // NR-Scope scheduling telemetry.
    case EventType::kTbsDrop:
    case EventType::kCrossTraffic:
    case EventType::kChannelDegrade:
    case EventType::kHarqRetx:
    case EventType::kUlScheduling:
    case EventType::kRrcChange:
      return Bit(S::kDci);
    // gNB log (private cells).
    case EventType::kRlcRetx:
      return Bit(S::kGnbLog);
  }
  return 0;
}

}  // namespace domino::analysis
