#include "domino/ranking.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace domino::analysis {

std::vector<WindowDiagnosis> RankRootCauses(const AnalysisResult& result,
                                            const Detector& detector) {
  const CausalGraph& graph = detector.graph();
  const auto& chains = detector.chains();

  // Base rate of each cause node: fraction of windows where it was active in
  // either perspective.
  std::vector<long> active_windows(graph.node_count(), 0);
  for (const auto& w : result.windows) {
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
      bool active = false;
      for (int p = 0; p < 2; ++p) {
        if (n < w.node_active[static_cast<std::size_t>(p)].size()) {
          active |= w.node_active[static_cast<std::size_t>(p)][n];
        }
      }
      if (active) ++active_windows[n];
    }
  }
  const double total =
      std::max<double>(1.0, static_cast<double>(result.windows.size()));

  std::vector<WindowDiagnosis> out;
  for (const auto& w : result.windows) {
    if (w.chains.empty()) continue;
    WindowDiagnosis diag;
    diag.window_begin = w.begin;
    for (const ChainInstance& ci : w.chains) {
      const ChainPath& path =
          chains[static_cast<std::size_t>(ci.chain_index)];
      auto cause = static_cast<std::size_t>(path.front());
      RankedChain rc;
      rc.instance = ci;
      rc.cause_rate = static_cast<double>(active_windows[cause]) / total;
      // Surprisal, with a small epsilon so a never-otherwise-seen cause
      // stays finite; longer chains break ties (1e-3 per hop). Confidence
      // scales the score (x1 on clean traces, so behaviour is unchanged).
      rc.confidence = ci.confidence;
      rc.insufficient = ci.confidence < detector.config().min_coverage;
      rc.score = (-std::log(std::max(rc.cause_rate, 1e-6)) +
                  1e-3 * static_cast<double>(path.size())) *
                 rc.confidence;
      diag.ranked.push_back(rc);
    }
    std::sort(diag.ranked.begin(), diag.ranked.end(),
              [](const RankedChain& a, const RankedChain& b) {
                // Insufficiently observed chains rank after every chain
                // with adequate stream coverage, whatever their score.
                if (a.insufficient != b.insufficient) return b.insufficient;
                return a.score > b.score;
              });
    out.push_back(std::move(diag));
  }
  return out;
}

}  // namespace domino::analysis
