// The Domino detector: slides a window over a derived trace, evaluates the
// causal graph's node conditions, extracts the feature vector, and reports
// every complete cause->consequence chain active in each window (§4.2:
// W = 5 s, step 0.5 s).
#pragma once

#include <vector>

#include "domino/features.h"
#include "domino/graph.h"

namespace domino::analysis {

struct DominoConfig {
  Duration window = Seconds(5.0);
  Duration step = Millis(500);
  EventThresholds thresholds;
  bool extract_features = true;  ///< Feature vectors cost ~40 detections per
                                 ///< window; disable for chain-only runs.
};

/// One detected causal chain in one window, from one sender perspective.
struct ChainInstance {
  Time window_begin;
  int sender_client = 0;   ///< 0 = UE outbound media, 1 = remote outbound.
  int chain_index = 0;     ///< Index into Detector::chains().
};

struct WindowResult {
  Time begin;
  FeatureVector features{};
  /// Active graph nodes per perspective: node_active[p][node].
  std::array<std::vector<bool>, 2> node_active;
  std::vector<ChainInstance> chains;
};

struct AnalysisResult {
  std::vector<WindowResult> windows;
  Duration trace_duration{0};
  /// Flat list of every chain instance across windows.
  [[nodiscard]] std::vector<ChainInstance> AllChains() const;
};

class Detector {
 public:
  Detector(CausalGraph graph, DominoConfig cfg);

  /// Runs the full sliding-window analysis over the trace.
  [[nodiscard]] AnalysisResult Analyze(
      const telemetry::DerivedTrace& trace) const;

  /// Evaluates one window at `begin` (both perspectives).
  [[nodiscard]] WindowResult AnalyzeWindow(
      const telemetry::DerivedTrace& trace, Time begin) const;

  [[nodiscard]] const CausalGraph& graph() const { return graph_; }
  /// Enumerated cause->consequence paths (fixed at construction).
  [[nodiscard]] const std::vector<ChainPath>& chains() const {
    return chains_;
  }
  [[nodiscard]] const DominoConfig& config() const { return cfg_; }

 private:
  CausalGraph graph_;
  DominoConfig cfg_;
  std::vector<ChainPath> chains_;
};

}  // namespace domino::analysis
