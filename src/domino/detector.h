// The Domino detector: slides a window over a derived trace, evaluates the
// causal graph's node conditions, extracts the feature vector, and reports
// every complete cause->consequence chain active in each window (§4.2:
// W = 5 s, step 0.5 s).
#pragma once

#include <vector>

#include "domino/features.h"
#include "domino/graph.h"

namespace domino::analysis {

struct DominoConfig {
  Duration window = Seconds(5.0);
  Duration step = Millis(500);
  EventThresholds thresholds;
  bool extract_features = true;  ///< Feature vectors cost ~40 detections per
                                 ///< window; disable for chain-only runs.
  /// Use the incremental sliding-window engine (incremental.h): monotone
  /// series cursors + O(1) amortised window aggregates + a per-window
  /// detection memo. Off = the naive re-slice/re-scan path, kept for parity
  /// testing and benchmarking.
  bool incremental = true;
  /// Window fan-out width for Detector::Analyze (and large streaming
  /// batches): 0 = std::thread::hardware_concurrency(), 1 = sequential.
  /// Results are merged in window order and are identical at any width.
  int threads = 0;
  /// How config files are linted before analysis (domino-lint, lint/lint.h):
  /// kOff = legacy first-error behaviour, kPermissive = report everything
  /// but only errors block, kStrict = warnings block too.
  enum class LintMode { kOff, kPermissive, kStrict };
  LintMode lint = LintMode::kPermissive;
  /// Graceful degradation threshold: a chain whose nodes' required streams
  /// cover less than this fraction of the window (per the sanitizer's
  /// TraceQuality annotations) is marked "insufficient evidence" instead of
  /// being asserted as a root cause. Irrelevant for traces without quality
  /// annotations — every chain then has confidence 1.
  double min_coverage = 0.5;
};

/// One detected causal chain in one window, from one sender perspective.
struct ChainInstance {
  Time window_begin;
  int sender_client = 0;   ///< 0 = UE outbound media, 1 = remote outbound.
  int chain_index = 0;     ///< Index into Detector::chains().
  /// Data-quality confidence: minimum window coverage over the streams the
  /// chain's nodes observe (1.0 when the trace has no quality annotations).
  /// Compare against DominoConfig::min_coverage for sufficiency.
  double confidence = 1.0;
};

struct WindowResult {
  Time begin;
  FeatureVector features{};
  /// Active graph nodes per perspective: node_active[p][node].
  std::array<std::vector<bool>, 2> node_active;
  std::vector<ChainInstance> chains;
};

struct AnalysisResult {
  std::vector<WindowResult> windows;
  Duration trace_duration{0};
  /// Flat list of every chain instance across windows.
  [[nodiscard]] std::vector<ChainInstance> AllChains() const;
};

class WindowStatsCache;  // incremental.h

class Detector {
 public:
  Detector(CausalGraph graph, DominoConfig cfg);

  /// Runs the full sliding-window analysis over the trace. A trace shorter
  /// than one window (but non-empty) yields a single truncated window at
  /// trace.begin, so short captures are still analysed.
  [[nodiscard]] AnalysisResult Analyze(
      const telemetry::DerivedTrace& trace) const;

  /// Evaluates one window at `begin` (both perspectives).
  [[nodiscard]] WindowResult AnalyzeWindow(
      const telemetry::DerivedTrace& trace, Time begin) const;

  /// Same, riding an incremental cache (windows must be presented to one
  /// cache in non-decreasing begin order; pass nullptr for the naive path).
  [[nodiscard]] WindowResult AnalyzeWindow(
      const telemetry::DerivedTrace& trace, Time begin,
      WindowStatsCache* cache) const;

  /// Analyses the given window begins (which must be sorted ascending),
  /// honouring cfg().incremental and cfg().threads; results come back in
  /// input order regardless of the fan-out width.
  [[nodiscard]] std::vector<WindowResult> AnalyzeWindows(
      const telemetry::DerivedTrace& trace,
      const std::vector<Time>& begins) const;

  [[nodiscard]] const CausalGraph& graph() const { return graph_; }
  /// Enumerated cause->consequence paths (fixed at construction).
  [[nodiscard]] const std::vector<ChainPath>& chains() const {
    return chains_;
  }
  [[nodiscard]] const DominoConfig& config() const { return cfg_; }

 private:
  CausalGraph graph_;
  DominoConfig cfg_;
  std::vector<ChainPath> chains_;
  /// Nodes whose built-in detection (event + thresholds) matches what the
  /// feature extractor computes — eligible for the shared per-window memo.
  std::vector<char> node_shares_memo_;
};

}  // namespace domino::analysis
