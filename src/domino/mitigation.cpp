#include "domino/mitigation.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "domino/ranking.h"

namespace domino::analysis {

namespace {

std::string BaseName(const std::string& node_name) {
  auto pos = node_name.find("@rev");
  return pos == std::string::npos ? node_name : node_name.substr(0, pos);
}

struct Recipe {
  Actor actor;
  const char* action;
  const char* rationale;
};

/// Cause -> countermeasure knowledge base (see header for the mapping's
/// grounding in the paper).
const std::map<std::string, std::vector<Recipe>>& RecipeBook() {
  static const std::map<std::string, std::vector<Recipe>> kBook = {
      {"poor_channel",
       {{Actor::kApplication, "cap_resolution",
         "a lower rung of the simulcast/resolution ladder needs less "
         "physical-layer capacity, keeping the rate gap negative during "
         "fades"},
        {Actor::kOperator, "enable_olla",
         "outer-loop link adaptation pins first-transmission BLER at its "
         "target when CQI reports go stale (see ablation_olla)"}}},
      {"cross_traffic",
       {{Actor::kApplication, "bound_target_bitrate",
         "keeping the target below the contended fair share avoids the "
         "overuse/decrease cycle each background burst triggers"},
        {Actor::kOperator, "boost_rtc_scheduler_weight",
         "a higher PF weight (or an RTC slice) preserves the VCA's PRB "
         "share under backlogged cross traffic"}}},
      {"ul_scheduling",
       {{Actor::kOperator, "enable_proactive_grants",
         "pre-allocated grants remove the BSR round trip for the first "
         "packets of each frame burst (Fig. 16: ~10 ms, at a bandwidth "
         "cost)"}}},
      {"harq_retx",
       {{Actor::kOperator, "conservative_mcs_offset",
         "a 1-2 dB MCS back-off trades a few percent of rate for fewer "
         "10 ms retransmission rounds on latency-critical traffic"}}},
      {"rlc_retx",
       {{Actor::kOperator, "raise_harq_retx_limit",
         "another HARQ round (10 ms) is far cheaper than RLC recovery "
         "(~105 ms plus head-of-line blocking)"}}},
      {"rrc_change",
       {{Actor::kApplication, "hold_rate_across_stalls",
         "a sub-second feedback blackout with instant recovery is an RRC "
         "transition, not congestion; holding the estimate avoids the "
         "30 s additive climb back"},
        {Actor::kOperator, "lengthen_inactivity_timer",
         "releases during active transfer indicate an aggressive "
         "connection-management policy (paper §5.3)"}}},
  };
  return kBook;
}

}  // namespace

std::vector<Mitigation> AdviseMitigations(const AnalysisResult& result,
                                          const Detector& detector) {
  // Severity = share of degraded windows this cause won in the ranked
  // diagnosis (rare-but-decisive causes beat ubiquitous background ones).
  auto diagnoses = RankRootCauses(result, detector);
  std::map<std::string, long> wins;
  for (const auto& d : diagnoses) {
    if (const RankedChain* best = d.best()) {
      const ChainPath& path = detector.chains()[
          static_cast<std::size_t>(best->instance.chain_index)];
      ++wins[BaseName(detector.graph().node(path.front()).name)];
    }
  }
  std::vector<Mitigation> out;
  double total = 0;
  for (const auto& [cause, count] : wins) {
    total += static_cast<double>(count);
  }
  for (const auto& [cause, count] : wins) {
    auto it = RecipeBook().find(cause);
    if (it == RecipeBook().end()) continue;  // custom/user cause: no recipe
    for (const Recipe& recipe : it->second) {
      Mitigation m;
      m.cause = cause;
      m.actor = recipe.actor;
      m.action = recipe.action;
      m.rationale = recipe.rationale;
      m.severity = total > 0 ? static_cast<double>(count) / total : 0;
      out.push_back(std::move(m));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Mitigation& a, const Mitigation& b) {
                     return a.severity > b.severity;
                   });
  return out;
}

std::string FormatMitigations(const std::vector<Mitigation>& mitigations) {
  std::ostringstream os;
  os << "Recommended mitigations\n-----------------------\n";
  if (mitigations.empty()) {
    os << "  (no attributable degradations)\n";
    return os.str();
  }
  for (const auto& m : mitigations) {
    os << "  [" << (m.actor == Actor::kApplication ? "app" : "operator")
       << "] " << m.action << "  (cause: " << m.cause << ", "
       << static_cast<int>(m.severity * 100) << "% of degraded windows)\n"
       << "        " << m.rationale << "\n";
  }
  return os.str();
}

}  // namespace domino::analysis
