// Aggregate statistics over a Domino analysis run:
//   * absolute occurrence frequency of causes and consequences per minute
//     (Fig. 10),
//   * conditional probability of each cause given each consequence, with an
//     "unknown" bucket for unattributed consequences (Table 2),
//   * each chain's ratio over all detected chains, counting a
//     (window, consequence) once even with multiple causes (Table 4).
//
// Cause identity merges the forward and reverse leg nodes ("harq_retx" and
// "harq_retx@rev" are the same physical cause) and both perspectives.
#pragma once

#include <string>
#include <vector>

#include "domino/detector.h"

namespace domino::analysis {

struct ChainStatistics {
  std::vector<std::string> causes;        ///< Base cause names, graph order.
  std::vector<std::string> consequences;  ///< Consequence node names.

  std::vector<double> cause_per_min;
  std::vector<double> consequence_per_min;

  /// conditional[k][c]: P(cause c | consequence k). The final column
  /// (index causes.size()) is the "unknown" bucket.
  std::vector<std::vector<double>> conditional;

  /// chain_ratio[k][c]: windows containing chain c->k over all windows
  /// containing any chain.
  std::vector<std::vector<double>> chain_ratio;

  long windows_total = 0;
  long windows_with_chain = 0;
  double minutes = 0;

  [[nodiscard]] int CauseIndex(const std::string& name) const;
  [[nodiscard]] int ConsequenceIndex(const std::string& name) const;
};

/// Computes all statistics for one analysis run.
ChainStatistics ComputeStatistics(const AnalysisResult& result,
                                  const CausalGraph& graph);

/// Renders the Table 2-style conditional probability table.
std::string FormatConditionalTable(const ChainStatistics& stats);
/// Renders the Table 4-style chain ratio table.
std::string FormatChainRatioTable(const ChainStatistics& stats);
/// Renders the Fig. 10-style occurrence frequencies.
std::string FormatOccurrence(const ChainStatistics& stats);

}  // namespace domino::analysis
