// Root-cause ranking.
//
// The paper's search finds "the most likely root cause" when several chains
// are simultaneously active in a window. Ubiquitous conditions (UL
// scheduling is true whenever the uplink carries data; HARQ retransmissions
// are constant background) would otherwise always tie with rare, highly
// informative causes (an RRC release, an RLC recovery).
//
// Domino ranks each chain instance by the *surprisal* of its cause over the
// analysed trace: score = -log(base rate of the cause across all windows).
// A cause active in every window scores 0; a cause active in 2% of windows
// scores ~3.9. Ties break toward longer (more mechanistic) chains, which
// carry more corroborating intermediate evidence.
#pragma once

#include <vector>

#include "domino/detector.h"

namespace domino::analysis {

/// A chain instance with its ranking score.
struct RankedChain {
  ChainInstance instance;
  double score = 0;      ///< Higher = more likely the true root cause.
  double cause_rate = 0; ///< Fraction of windows where the cause was active.
  /// Data-quality confidence inherited from the instance (1.0 on clean
  /// traces); the surprisal score is scaled by it, so degraded evidence
  /// ranks below equally surprising but fully observed chains.
  double confidence = 1.0;
  /// True when confidence fell below DominoConfig::min_coverage: the chain
  /// is reported as "insufficient evidence" and sorted after every
  /// sufficiently observed chain regardless of score.
  bool insufficient = false;
};

/// Per-window diagnosis: all active chains ranked, best first.
struct WindowDiagnosis {
  Time window_begin;
  std::vector<RankedChain> ranked;  ///< Empty if no chains in the window.

  /// The top-ranked chain, if any.
  [[nodiscard]] const RankedChain* best() const {
    return ranked.empty() ? nullptr : &ranked.front();
  }
};

/// Ranks every window's chain instances by cause surprisal computed over
/// the whole analysis result. Windows without chains are omitted.
std::vector<WindowDiagnosis> RankRootCauses(const AnalysisResult& result,
                                            const Detector& detector);

}  // namespace domino::analysis
