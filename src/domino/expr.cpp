#include "domino/expr.h"

#include <cctype>
#include <cmath>
#include <functional>
#include <map>
#include <utility>

#include "common/stats.h"

namespace domino::analysis {

WindowView<double> ExprNode::EvalSeries(const WindowContext&) const {
  throw DslError("expression is scalar-valued where a series was expected");
}

const TimeSeries<double>* ExprNode::SourceSeries(const WindowContext&) const {
  return nullptr;
}

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kEnd, kNumber, kIdent, kDot, kComma, kLParen, kRParen,
  kPlus, kMinus, kStar, kSlash,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kAnd, kOr, kNot,
};

struct Token {
  Tok kind;
  double number = 0;
  std::string text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { Advance(); }

  const Token& peek() const { return current_; }
  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (i_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[i_]))) {
      ++i_;
    }
    current_.pos = i_;
    if (i_ >= src_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    char c = src_[i_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[i_ + 1])))) {
      std::size_t end = i_;
      while (end < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '.' || src_[end] == 'e' || src_[end] == 'E' ||
              ((src_[end] == '+' || src_[end] == '-') && end > i_ &&
               (src_[end - 1] == 'e' || src_[end - 1] == 'E')))) {
        ++end;
      }
      current_.kind = Tok::kNumber;
      try {
        current_.number = std::stod(src_.substr(i_, end - i_));
      } catch (const std::exception&) {
        throw DslError("bad number at position " + std::to_string(i_));
      }
      i_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i_;
      while (end < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '_')) {
        ++end;
      }
      std::string word = src_.substr(i_, end - i_);
      i_ = end;
      if (word == "and") {
        current_.kind = Tok::kAnd;
      } else if (word == "or") {
        current_.kind = Tok::kOr;
      } else if (word == "not") {
        current_.kind = Tok::kNot;
      } else {
        current_.kind = Tok::kIdent;
        current_.text = word;
      }
      return;
    }
    auto two = [&](char next) {
      return i_ + 1 < src_.size() && src_[i_ + 1] == next;
    };
    switch (c) {
      case '.': current_.kind = Tok::kDot; ++i_; return;
      case ',': current_.kind = Tok::kComma; ++i_; return;
      case '(': current_.kind = Tok::kLParen; ++i_; return;
      case ')': current_.kind = Tok::kRParen; ++i_; return;
      case '+': current_.kind = Tok::kPlus; ++i_; return;
      case '-': current_.kind = Tok::kMinus; ++i_; return;
      case '*': current_.kind = Tok::kStar; ++i_; return;
      case '/': current_.kind = Tok::kSlash; ++i_; return;
      case '<':
        if (two('=')) { current_.kind = Tok::kLe; i_ += 2; }
        else { current_.kind = Tok::kLt; ++i_; }
        return;
      case '>':
        if (two('=')) { current_.kind = Tok::kGe; i_ += 2; }
        else { current_.kind = Tok::kGt; ++i_; }
        return;
      case '=':
        if (two('=')) { current_.kind = Tok::kEq; i_ += 2; return; }
        break;
      case '!':
        if (two('=')) { current_.kind = Tok::kNe; i_ += 2; return; }
        break;
      default:
        break;
    }
    throw DslError(std::string("unexpected character '") + c +
                   "' at position " + std::to_string(i_));
  }

  const std::string& src_;
  std::size_t i_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// AST nodes
// ---------------------------------------------------------------------------

class NumberNode : public ExprNode {
 public:
  explicit NumberNode(double v) : v_(v) {}
  double EvalScalar(const WindowContext&) const override { return v_; }
  std::string ToPython() const override {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v_);
    return buf;
  }

 private:
  double v_;
};

class SeriesNode : public ExprNode {
 public:
  SeriesNode(std::string scope, std::string name)
      : scope_(std::move(scope)), name_(std::move(name)) {
    Check();
  }

  bool is_series() const override { return true; }

  double EvalScalar(const WindowContext&) const override {
    throw DslError("series '" + scope_ + "." + name_ +
                   "' used where a scalar was expected");
  }

  WindowView<double> EvalSeries(const WindowContext& ctx) const override {
    const TimeSeries<double>* s = Resolve(ctx);
    return ctx.View(*s);
  }

  const TimeSeries<double>* SourceSeries(
      const WindowContext& ctx) const override {
    return Resolve(ctx);
  }

  std::string ToPython() const override {
    return "w[\"" + scope_ + "." + name_ + "\"]";
  }

 private:
  void Check() const;
  const TimeSeries<double>* Resolve(const WindowContext& ctx) const;

  std::string scope_;
  std::string name_;
};

enum class Func {
  kMin, kMax, kMean, kStdDev, kSum, kCount, kFirst, kLast, kPercentile,
  kCountBelow, kCountAbove, kHasDrop, kHasRise, kTrendUp, kTrendDown,
  kFracGt, kAnyGt,
};

struct FuncInfo {
  Func id;
  const char* name;
  int series_args;  ///< Leading series arguments.
  int scalar_args;  ///< Trailing scalar arguments.
};

constexpr FuncInfo kFuncs[] = {
    {Func::kMin, "min", 1, 0},          {Func::kMax, "max", 1, 0},
    {Func::kMean, "mean", 1, 0},        {Func::kStdDev, "stddev", 1, 0},
    {Func::kSum, "sum", 1, 0},          {Func::kFirst, "first", 1, 0},
    {Func::kLast, "last", 1, 0},
    {Func::kCount, "count", 1, 0},      {Func::kPercentile, "p", 1, 1},
    {Func::kCountBelow, "count_below", 1, 1},
    {Func::kCountAbove, "count_above", 1, 1},
    {Func::kHasDrop, "has_drop", 1, 0}, {Func::kHasRise, "has_rise", 1, 0},
    {Func::kTrendUp, "trend_up", 1, 0}, {Func::kTrendDown, "trend_down", 1, 0},
    {Func::kFracGt, "frac_gt", 2, 0},   {Func::kAnyGt, "any_gt", 2, 0},
};

const FuncInfo* FindFunc(const std::string& name) {
  for (const auto& f : kFuncs) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

class FuncNode : public ExprNode {
 public:
  FuncNode(const FuncInfo& info, std::vector<ExprPtr> series,
           std::vector<ExprPtr> scalars)
      : info_(info), series_(std::move(series)), scalars_(std::move(scalars)) {}

  double EvalScalar(const WindowContext& ctx) const override {
    // Aggregates over a plain series reference ride the window aggregates
    // (O(1) amortised under the incremental engine, identical results).
    if (const TimeSeries<double>* src = series_[0]->SourceSeries(ctx)) {
      switch (info_.id) {
        case Func::kMin:
          return ctx.SeriesCount(*src) == 0 ? 0.0 : ctx.SeriesMin(*src);
        case Func::kMax:
          return ctx.SeriesCount(*src) == 0 ? 0.0 : ctx.SeriesMax(*src);
        case Func::kMean:
          return ctx.SeriesCount(*src) == 0 ? 0.0 : ctx.SeriesMean(*src);
        case Func::kSum:
          return ctx.SeriesSum(*src);
        case Func::kCount:
          return static_cast<double>(ctx.SeriesCount(*src));
        case Func::kCountBelow:
          return static_cast<double>(
              ctx.SeriesCountBelow(*src, scalars_[0]->EvalScalar(ctx)));
        case Func::kCountAbove:
          return static_cast<double>(
              ctx.SeriesCountAbove(*src, scalars_[0]->EvalScalar(ctx)));
        default:
          break;  // view-based evaluation below
      }
    }
    auto s0 = series_[0]->EvalSeries(ctx);
    switch (info_.id) {
      case Func::kMin:
        return s0.empty() ? 0.0 : s0.Min();
      case Func::kMax:
        return s0.empty() ? 0.0 : s0.Max();
      case Func::kMean:
        return s0.empty() ? 0.0 : s0.Mean();
      case Func::kStdDev: {
        if (s0.size() < 2) return 0.0;
        std::vector<double> v;
        v.reserve(s0.size());
        for (const auto& smp : s0) v.push_back(smp.value);
        return StdDev(v);
      }
      case Func::kFirst:
        return s0.empty() ? 0.0 : s0[0].value;
      case Func::kLast:
        return s0.empty() ? 0.0 : s0[s0.size() - 1].value;
      case Func::kSum:
        return s0.Sum();
      case Func::kCount:
        return static_cast<double>(s0.size());
      case Func::kPercentile: {
        std::vector<double> v;
        v.reserve(s0.size());
        for (const auto& s : s0) v.push_back(s.value);
        return Percentile(std::move(v), scalars_[0]->EvalScalar(ctx));
      }
      case Func::kCountBelow: {
        double x = scalars_[0]->EvalScalar(ctx);
        return static_cast<double>(
            s0.CountIf([x](double v) { return v < x; }));
      }
      case Func::kCountAbove: {
        double x = scalars_[0]->EvalScalar(ctx);
        return static_cast<double>(
            s0.CountIf([x](double v) { return v > x; }));
      }
      case Func::kHasDrop:
        return s0.HasDecreasingStep() ? 1.0 : 0.0;
      case Func::kHasRise:
        return s0.HasIncreasingStep() ? 1.0 : 0.0;
      case Func::kTrendUp:
      case Func::kTrendDown: {
        auto means = BucketMeans(s0, 10);
        for (std::size_t k = 0; k + 1 < means.size(); ++k) {
          if (info_.id == Func::kTrendUp && means[k + 1] > means[k]) {
            return 1.0;
          }
          if (info_.id == Func::kTrendDown && means[k + 1] < means[k]) {
            return 1.0;
          }
        }
        return 0.0;
      }
      case Func::kFracGt:
      case Func::kAnyGt: {
        auto s1 = series_[1]->EvalSeries(ctx);
        std::size_t n = std::min(s0.size(), s1.size());
        if (n == 0) return 0.0;
        std::size_t cnt = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (s0[i].value > s1[i].value) ++cnt;
        }
        if (info_.id == Func::kAnyGt) return cnt > 0 ? 1.0 : 0.0;
        return static_cast<double>(cnt) / static_cast<double>(n);
      }
    }
    return 0.0;
  }

  std::string ToPython() const override {
    std::string out = std::string("dsl_") + info_.name + "(";
    bool first = true;
    for (const auto& a : series_) {
      if (!first) out += ", ";
      out += a->ToPython();
      first = false;
    }
    for (const auto& a : scalars_) {
      if (!first) out += ", ";
      out += a->ToPython();
      first = false;
    }
    return out + ")";
  }

 private:
  FuncInfo info_;
  std::vector<ExprPtr> series_;
  std::vector<ExprPtr> scalars_;
};

class UnaryNode : public ExprNode {
 public:
  enum Op { kNeg, kNot };
  UnaryNode(Op op, ExprPtr inner) : op_(op), inner_(std::move(inner)) {}

  double EvalScalar(const WindowContext& ctx) const override {
    double v = inner_->EvalScalar(ctx);
    return op_ == kNeg ? -v : (v == 0.0 ? 1.0 : 0.0);
  }
  std::string ToPython() const override {
    return op_ == kNeg ? "(-" + inner_->ToPython() + ")"
                       : "(not " + inner_->ToPython() + ")";
  }

 private:
  Op op_;
  ExprPtr inner_;
};

class BinaryNode : public ExprNode {
 public:
  BinaryNode(Tok op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  double EvalScalar(const WindowContext& ctx) const override {
    // Short-circuit logical operators.
    if (op_ == Tok::kAnd) {
      return lhs_->EvalScalar(ctx) != 0.0 && rhs_->EvalScalar(ctx) != 0.0
                 ? 1.0
                 : 0.0;
    }
    if (op_ == Tok::kOr) {
      return lhs_->EvalScalar(ctx) != 0.0 || rhs_->EvalScalar(ctx) != 0.0
                 ? 1.0
                 : 0.0;
    }
    double a = lhs_->EvalScalar(ctx);
    double b = rhs_->EvalScalar(ctx);
    switch (op_) {
      case Tok::kPlus: return a + b;
      case Tok::kMinus: return a - b;
      case Tok::kStar: return a * b;
      case Tok::kSlash: return b == 0.0 ? 0.0 : a / b;
      case Tok::kLt: return a < b ? 1.0 : 0.0;
      case Tok::kGt: return a > b ? 1.0 : 0.0;
      case Tok::kLe: return a <= b ? 1.0 : 0.0;
      case Tok::kGe: return a >= b ? 1.0 : 0.0;
      case Tok::kEq: return a == b ? 1.0 : 0.0;
      case Tok::kNe: return a != b ? 1.0 : 0.0;
      default: throw DslError("internal: bad binary operator");
    }
  }

  std::string ToPython() const override {
    static const std::map<Tok, std::string> kOps = {
        {Tok::kPlus, "+"}, {Tok::kMinus, "-"}, {Tok::kStar, "*"},
        {Tok::kSlash, "/"}, {Tok::kLt, "<"}, {Tok::kGt, ">"},
        {Tok::kLe, "<="}, {Tok::kGe, ">="}, {Tok::kEq, "=="},
        {Tok::kNe, "!="}, {Tok::kAnd, "and"}, {Tok::kOr, "or"},
    };
    return "(" + lhs_->ToPython() + " " + kOps.at(op_) + " " +
           rhs_->ToPython() + ")";
  }

 private:
  Tok op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// ---------------------------------------------------------------------------
// Series name resolution
// ---------------------------------------------------------------------------

const TimeSeries<double>* ResolveDirSeries(const telemetry::DirectionSeries& d,
                                           const std::string& name) {
  if (name == "tbs") return &d.tbs_bytes;
  if (name == "prb_self") return &d.prb_self;
  if (name == "prb_other") return &d.prb_other;
  if (name == "mcs") return &d.mcs;
  if (name == "harq_retx") return &d.harq_retx;
  if (name == "rlc_retx") return &d.rlc_retx;
  if (name == "owd_ms") return &d.owd_ms;
  if (name == "app_bitrate") return &d.app_bitrate_bps;
  if (name == "tbs_bitrate") return &d.tbs_bitrate_bps;
  if (name == "rnti") return &d.rnti;
  return nullptr;
}

const TimeSeries<double>* ResolveClientSeries(
    const telemetry::ClientSeries& c, const std::string& name) {
  if (name == "inbound_fps") return &c.inbound_fps;
  if (name == "outbound_fps") return &c.outbound_fps;
  if (name == "outbound_resolution") return &c.outbound_resolution;
  if (name == "jitter_buffer_ms") return &c.jitter_buffer_ms;
  if (name == "target_bitrate") return &c.target_bitrate_bps;
  if (name == "pushback_rate") return &c.pushback_bitrate_bps;
  if (name == "outstanding_bytes") return &c.outstanding_bytes;
  if (name == "cwnd_bytes") return &c.cwnd_bytes;
  if (name == "overuse") return &c.overuse;
  return nullptr;
}

bool IsDirScope(const std::string& s) {
  return s == "fwd" || s == "rev" || s == "ul" || s == "dl";
}
bool IsClientScope(const std::string& s) {
  return s == "sender" || s == "receiver" || s == "ue" || s == "remote";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& src) : lexer_(src) {}

  ExprPtr Parse() {
    ExprPtr e = ParseOr();
    if (lexer_.peek().kind != Tok::kEnd) {
      throw DslError("unexpected trailing input at position " +
                     std::to_string(lexer_.peek().pos));
    }
    return e;
  }

 private:
  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (lexer_.peek().kind == Tok::kOr) {
      lexer_.Take();
      lhs = std::make_shared<BinaryNode>(Tok::kOr, lhs, ParseAnd());
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseCmp();
    while (lexer_.peek().kind == Tok::kAnd) {
      lexer_.Take();
      lhs = std::make_shared<BinaryNode>(Tok::kAnd, lhs, ParseCmp());
    }
    return lhs;
  }

  ExprPtr ParseCmp() {
    ExprPtr lhs = ParseSum();
    Tok k = lexer_.peek().kind;
    if (k == Tok::kLt || k == Tok::kGt || k == Tok::kLe || k == Tok::kGe ||
        k == Tok::kEq || k == Tok::kNe) {
      lexer_.Take();
      return std::make_shared<BinaryNode>(k, lhs, ParseSum());
    }
    return lhs;
  }

  ExprPtr ParseSum() {
    ExprPtr lhs = ParseProd();
    for (;;) {
      Tok k = lexer_.peek().kind;
      if (k != Tok::kPlus && k != Tok::kMinus) return lhs;
      lexer_.Take();
      lhs = std::make_shared<BinaryNode>(k, lhs, ParseProd());
    }
  }

  ExprPtr ParseProd() {
    ExprPtr lhs = ParseUnary();
    for (;;) {
      Tok k = lexer_.peek().kind;
      if (k != Tok::kStar && k != Tok::kSlash) return lhs;
      lexer_.Take();
      lhs = std::make_shared<BinaryNode>(k, lhs, ParseUnary());
    }
  }

  ExprPtr ParseUnary() {
    if (lexer_.peek().kind == Tok::kMinus) {
      lexer_.Take();
      return std::make_shared<UnaryNode>(UnaryNode::kNeg, ParseUnary());
    }
    if (lexer_.peek().kind == Tok::kNot) {
      lexer_.Take();
      return std::make_shared<UnaryNode>(UnaryNode::kNot, ParseUnary());
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    Token t = lexer_.Take();
    switch (t.kind) {
      case Tok::kNumber:
        return std::make_shared<NumberNode>(t.number);
      case Tok::kLParen: {
        ExprPtr e = ParseOr();
        Expect(Tok::kRParen, ")");
        return e;
      }
      case Tok::kIdent: {
        if (lexer_.peek().kind == Tok::kDot) {
          lexer_.Take();
          Token name = Expect(Tok::kIdent, "series name");
          return std::make_shared<SeriesNode>(t.text, name.text);
        }
        const FuncInfo* fn = FindFunc(t.text);
        if (fn == nullptr) {
          throw DslError("unknown function or scope '" + t.text + "'");
        }
        Expect(Tok::kLParen, "(");
        std::vector<ExprPtr> series, scalars;
        for (int i = 0; i < fn->series_args + fn->scalar_args; ++i) {
          if (i > 0) Expect(Tok::kComma, ",");
          ExprPtr arg = ParseOr();
          if (i < fn->series_args) {
            if (!arg->is_series()) {
              throw DslError(std::string(fn->name) + ": argument " +
                             std::to_string(i + 1) + " must be a series");
            }
            series.push_back(arg);
          } else {
            if (arg->is_series()) {
              throw DslError(std::string(fn->name) + ": argument " +
                             std::to_string(i + 1) + " must be a scalar");
            }
            scalars.push_back(arg);
          }
        }
        Expect(Tok::kRParen, ")");
        return std::make_shared<FuncNode>(*fn, std::move(series),
                                          std::move(scalars));
      }
      default:
        throw DslError("unexpected token at position " +
                       std::to_string(t.pos));
    }
  }

  Token Expect(Tok kind, const char* what) {
    Token t = lexer_.Take();
    if (t.kind != kind) {
      throw DslError(std::string("expected ") + what + " at position " +
                     std::to_string(t.pos));
    }
    return t;
  }

  Lexer lexer_;
};

}  // namespace

void SeriesNode::Check() const {
  if (IsDirScope(scope_)) {
    telemetry::DirectionSeries dummy;
    if (ResolveDirSeries(dummy, name_) == nullptr) {
      throw DslError("unknown 5G series '" + name_ + "' in scope '" + scope_ +
                     "'");
    }
    return;
  }
  if (IsClientScope(scope_)) {
    telemetry::ClientSeries dummy;
    if (ResolveClientSeries(dummy, name_) == nullptr) {
      throw DslError("unknown client series '" + name_ + "' in scope '" +
                     scope_ + "'");
    }
    return;
  }
  throw DslError("unknown scope '" + scope_ + "'");
}

const TimeSeries<double>* SeriesNode::Resolve(const WindowContext& ctx) const {
  if (IsDirScope(scope_)) {
    const telemetry::DirectionSeries* d = nullptr;
    if (scope_ == "fwd") {
      d = &ctx.Dir(PathLeg::kFwd);
    } else if (scope_ == "rev") {
      d = &ctx.Dir(PathLeg::kRev);
    } else if (scope_ == "ul") {
      d = &ctx.trace().dir[0];
    } else {
      d = &ctx.trace().dir[1];
    }
    return ResolveDirSeries(*d, name_);
  }
  const telemetry::ClientSeries* c = nullptr;
  if (scope_ == "sender") {
    c = &ctx.Sender();
  } else if (scope_ == "receiver") {
    c = &ctx.Receiver();
  } else if (scope_ == "ue") {
    c = &ctx.trace().client[0];
  } else {
    c = &ctx.trace().client[1];
  }
  return ResolveClientSeries(*c, name_);
}

ExprPtr ParseExpression(const std::string& text) {
  Parser p(text);
  return p.Parse();
}

std::vector<std::string> KnownDirSeries() {
  return {"tbs",      "prb_self", "prb_other",  "mcs",        "harq_retx",
          "rlc_retx", "owd_ms",   "app_bitrate", "tbs_bitrate", "rnti"};
}
std::vector<std::string> KnownClientSeries() {
  return {"inbound_fps",       "outbound_fps", "outbound_resolution",
          "jitter_buffer_ms",  "target_bitrate", "pushback_rate",
          "outstanding_bytes", "cwnd_bytes",   "overuse"};
}
std::vector<std::string> KnownScopes() {
  return {"fwd", "rev", "ul", "dl", "sender", "receiver", "ue", "remote"};
}

}  // namespace domino::analysis
