#include "domino/expr.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <utility>

#include "common/stats.h"
#include "domino/lint/schema.h"
#include "domino/lint/suggest.h"

namespace domino::analysis {

WindowView<double> ExprNode::EvalSeries(const WindowContext&) const {
  throw DslError("expression is scalar-valued where a series was expected");
}

const TimeSeries<double>* ExprNode::SourceSeries(const WindowContext&) const {
  return nullptr;
}

namespace {

using lint::DiagnosticSink;
using lint::SourceSpan;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string FormatNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kEnd, kNumber, kIdent, kDot, kComma, kLParen, kRParen,
  kPlus, kMinus, kStar, kSlash,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kAnd, kOr, kNot,
};

struct Token {
  Tok kind;
  double number = 0;
  std::string text;
  std::size_t pos = 0;  ///< 0-based offset into the expression source.
  std::size_t len = 1;
};

/// 1-based column span of a token (expressions are single-line; the config
/// layer rebases line/column onto file coordinates).
SourceSpan SpanOf(const Token& t) {
  return {1, static_cast<int>(t.pos) + 1, static_cast<int>(t.len)};
}

SourceSpan SpanBetween(std::size_t begin, std::size_t end) {
  return {1, static_cast<int>(begin) + 1,
          static_cast<int>(end > begin ? end - begin : 1)};
}

/// Tokenizer with two error modes: with a sink it emits a diagnostic and
/// resynchronizes (skips the offending characters); without one it throws
/// DslError with the 1-based column, the legacy behaviour.
class Lexer {
 public:
  Lexer(const std::string& src, DiagnosticSink* sink)
      : src_(src), sink_(sink) {
    Advance();
  }

  const Token& peek() const { return current_; }
  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Fail(const std::string& code, SourceSpan span,
            const std::string& msg) {
    if (sink_ != nullptr) {
      sink_->Error(code, span, msg);
      return;
    }
    throw DslError(msg + " (column " + std::to_string(span.col) + ")");
  }

  void Advance() {
    for (;;) {
      while (i_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[i_]))) {
        ++i_;
      }
      current_ = Token{};
      current_.pos = i_;
      if (i_ >= src_.size()) {
        current_.kind = Tok::kEnd;
        current_.len = 0;
        return;
      }
      char c = src_[i_];
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[i_ + 1])))) {
        std::size_t end = i_;
        while (end < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[end])) ||
                src_[end] == '.' || src_[end] == 'e' || src_[end] == 'E' ||
                ((src_[end] == '+' || src_[end] == '-') && end > i_ &&
                 (src_[end - 1] == 'e' || src_[end - 1] == 'E')))) {
          ++end;
        }
        current_.kind = Tok::kNumber;
        current_.len = end - i_;
        // Exception-free parse: a malformed literal is DL002, one whose
        // magnitude over/underflows double (e.g. 1e99999) is DL005.
        const std::string lit = src_.substr(i_, end - i_);
        char* endp = nullptr;
        errno = 0;
        double v = std::strtod(lit.c_str(), &endp);
        if (endp != lit.c_str() + lit.size()) {
          Fail("DL002", SpanBetween(i_, end),
               "bad number literal '" + lit + "'");
          v = 0;  // recovered placeholder
        } else if (errno == ERANGE || !std::isfinite(v)) {
          Fail("DL005", SpanBetween(i_, end),
               "number literal '" + lit + "' is out of range for a double");
          v = 0;  // recovered placeholder
        }
        current_.number = v;
        i_ = end;
        return;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t end = i_;
        while (end < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[end])) ||
                src_[end] == '_')) {
          ++end;
        }
        std::string word = src_.substr(i_, end - i_);
        current_.len = end - i_;
        i_ = end;
        if (word == "and") {
          current_.kind = Tok::kAnd;
        } else if (word == "or") {
          current_.kind = Tok::kOr;
        } else if (word == "not") {
          current_.kind = Tok::kNot;
        } else {
          current_.kind = Tok::kIdent;
          current_.text = word;
        }
        return;
      }
      auto two = [&](char next) {
        return i_ + 1 < src_.size() && src_[i_ + 1] == next;
      };
      switch (c) {
        case '.': current_.kind = Tok::kDot; ++i_; return;
        case ',': current_.kind = Tok::kComma; ++i_; return;
        case '(': current_.kind = Tok::kLParen; ++i_; return;
        case ')': current_.kind = Tok::kRParen; ++i_; return;
        case '+': current_.kind = Tok::kPlus; ++i_; return;
        case '-': current_.kind = Tok::kMinus; ++i_; return;
        case '*': current_.kind = Tok::kStar; ++i_; return;
        case '/': current_.kind = Tok::kSlash; ++i_; return;
        case '<':
          if (two('=')) { current_.kind = Tok::kLe; current_.len = 2; i_ += 2; }
          else { current_.kind = Tok::kLt; ++i_; }
          return;
        case '>':
          if (two('=')) { current_.kind = Tok::kGe; current_.len = 2; i_ += 2; }
          else { current_.kind = Tok::kGt; ++i_; }
          return;
        case '=':
          if (two('=')) { current_.kind = Tok::kEq; current_.len = 2; i_ += 2;
                          return; }
          break;
        case '!':
          if (two('=')) { current_.kind = Tok::kNe; current_.len = 2; i_ += 2;
                          return; }
          break;
        default:
          break;
      }
      // Unrecognized character: collapse a contiguous run into one
      // diagnostic, skip it, and try again from the next character.
      std::size_t end = i_;
      auto recognizable = [&](char ch) {
        return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
               std::isspace(static_cast<unsigned char>(ch)) ||
               std::string(".,()+-*/<>=!").find(ch) != std::string::npos;
      };
      while (end < src_.size() && !recognizable(src_[end])) ++end;
      if (end == i_) ++end;  // '=' or '!' not followed by '='
      Fail("DL001", SpanBetween(i_, end),
           "unexpected character" + std::string(end - i_ > 1 ? "s '" : " '") +
               src_.substr(i_, end - i_) + "'");
      i_ = end;  // sink mode: resynchronize and keep lexing
    }
  }

  const std::string& src_;
  DiagnosticSink* sink_;
  std::size_t i_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// AST nodes
// ---------------------------------------------------------------------------

class NumberNode : public ExprNode {
 public:
  explicit NumberNode(double v) : v_(v) {}
  double EvalScalar(const WindowContext&) const override { return v_; }
  std::string ToPython() const override { return FormatNum(v_); }
  void Accept(ExprVisitor& v) const override { v.VisitNumber(*this, v_); }

 private:
  double v_;
};

class SeriesNode : public ExprNode {
 public:
  SeriesNode(std::string scope, std::string name)
      : scope_(std::move(scope)), name_(std::move(name)) {}

  bool is_series() const override { return true; }

  double EvalScalar(const WindowContext&) const override {
    throw DslError("series '" + scope_ + "." + name_ +
                   "' used where a scalar was expected");
  }

  WindowView<double> EvalSeries(const WindowContext& ctx) const override {
    const TimeSeries<double>* s = Resolve(ctx);
    return ctx.View(*s);
  }

  const TimeSeries<double>* SourceSeries(
      const WindowContext& ctx) const override {
    return Resolve(ctx);
  }

  std::string ToPython() const override {
    return "w[\"" + scope_ + "." + name_ + "\"]";
  }

  void Accept(ExprVisitor& v) const override {
    v.VisitSeries(*this, scope_, name_);
  }

 private:
  const TimeSeries<double>* Resolve(const WindowContext& ctx) const;

  std::string scope_;
  std::string name_;
};

enum class Func {
  kMin, kMax, kMean, kStdDev, kSum, kCount, kFirst, kLast, kPercentile,
  kCountBelow, kCountAbove, kHasDrop, kHasRise, kTrendUp, kTrendDown,
  kFracGt, kAnyGt,
};

struct FuncInfo {
  Func id;
  const char* name;
  int series_args;  ///< Leading series arguments.
  int scalar_args;  ///< Trailing scalar arguments.
};

constexpr FuncInfo kFuncs[] = {
    {Func::kMin, "min", 1, 0},          {Func::kMax, "max", 1, 0},
    {Func::kMean, "mean", 1, 0},        {Func::kStdDev, "stddev", 1, 0},
    {Func::kSum, "sum", 1, 0},          {Func::kFirst, "first", 1, 0},
    {Func::kLast, "last", 1, 0},
    {Func::kCount, "count", 1, 0},      {Func::kPercentile, "p", 1, 1},
    {Func::kCountBelow, "count_below", 1, 1},
    {Func::kCountAbove, "count_above", 1, 1},
    {Func::kHasDrop, "has_drop", 1, 0}, {Func::kHasRise, "has_rise", 1, 0},
    {Func::kTrendUp, "trend_up", 1, 0}, {Func::kTrendDown, "trend_down", 1, 0},
    {Func::kFracGt, "frac_gt", 2, 0},   {Func::kAnyGt, "any_gt", 2, 0},
};

const FuncInfo* FindFunc(const std::string& name) {
  for (const auto& f : kFuncs) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

class FuncNode : public ExprNode {
 public:
  FuncNode(const FuncInfo& info, std::vector<ExprPtr> series,
           std::vector<ExprPtr> scalars)
      : info_(info), series_(std::move(series)), scalars_(std::move(scalars)) {}

  double EvalScalar(const WindowContext& ctx) const override {
    // Aggregates over a plain series reference ride the window aggregates
    // (O(1) amortised under the incremental engine, identical results).
    if (const TimeSeries<double>* src = series_[0]->SourceSeries(ctx)) {
      switch (info_.id) {
        case Func::kMin:
          return ctx.SeriesCount(*src) == 0 ? 0.0 : ctx.SeriesMin(*src);
        case Func::kMax:
          return ctx.SeriesCount(*src) == 0 ? 0.0 : ctx.SeriesMax(*src);
        case Func::kMean:
          return ctx.SeriesCount(*src) == 0 ? 0.0 : ctx.SeriesMean(*src);
        case Func::kSum:
          return ctx.SeriesSum(*src);
        case Func::kCount:
          return static_cast<double>(ctx.SeriesCount(*src));
        case Func::kCountBelow:
          return static_cast<double>(
              ctx.SeriesCountBelow(*src, scalars_[0]->EvalScalar(ctx)));
        case Func::kCountAbove:
          return static_cast<double>(
              ctx.SeriesCountAbove(*src, scalars_[0]->EvalScalar(ctx)));
        default:
          break;  // view-based evaluation below
      }
    }
    auto s0 = series_[0]->EvalSeries(ctx);
    switch (info_.id) {
      case Func::kMin:
        return s0.empty() ? 0.0 : s0.Min();
      case Func::kMax:
        return s0.empty() ? 0.0 : s0.Max();
      case Func::kMean:
        return s0.empty() ? 0.0 : s0.Mean();
      case Func::kStdDev: {
        if (s0.size() < 2) return 0.0;
        std::vector<double> v;
        v.reserve(s0.size());
        for (const auto& smp : s0) v.push_back(smp.value);
        return StdDev(v);
      }
      case Func::kFirst:
        return s0.empty() ? 0.0 : s0[0].value;
      case Func::kLast:
        return s0.empty() ? 0.0 : s0[s0.size() - 1].value;
      case Func::kSum:
        return s0.Sum();
      case Func::kCount:
        return static_cast<double>(s0.size());
      case Func::kPercentile: {
        std::vector<double> v;
        v.reserve(s0.size());
        for (const auto& s : s0) v.push_back(s.value);
        return Percentile(std::move(v), scalars_[0]->EvalScalar(ctx));
      }
      case Func::kCountBelow: {
        double x = scalars_[0]->EvalScalar(ctx);
        return static_cast<double>(
            s0.CountIf([x](double v) { return v < x; }));
      }
      case Func::kCountAbove: {
        double x = scalars_[0]->EvalScalar(ctx);
        return static_cast<double>(
            s0.CountIf([x](double v) { return v > x; }));
      }
      case Func::kHasDrop:
        return s0.HasDecreasingStep() ? 1.0 : 0.0;
      case Func::kHasRise:
        return s0.HasIncreasingStep() ? 1.0 : 0.0;
      case Func::kTrendUp:
      case Func::kTrendDown: {
        auto means = BucketMeans(s0, 10);
        for (std::size_t k = 0; k + 1 < means.size(); ++k) {
          if (info_.id == Func::kTrendUp && means[k + 1] > means[k]) {
            return 1.0;
          }
          if (info_.id == Func::kTrendDown && means[k + 1] < means[k]) {
            return 1.0;
          }
        }
        return 0.0;
      }
      case Func::kFracGt:
      case Func::kAnyGt: {
        auto s1 = series_[1]->EvalSeries(ctx);
        std::size_t n = std::min(s0.size(), s1.size());
        if (n == 0) return 0.0;
        std::size_t cnt = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (s0[i].value > s1[i].value) ++cnt;
        }
        if (info_.id == Func::kAnyGt) return cnt > 0 ? 1.0 : 0.0;
        return static_cast<double>(cnt) / static_cast<double>(n);
      }
    }
    return 0.0;
  }

  std::string ToPython() const override {
    std::string out = std::string("dsl_") + info_.name + "(";
    bool first = true;
    for (const auto& a : series_) {
      if (!first) out += ", ";
      out += a->ToPython();
      first = false;
    }
    for (const auto& a : scalars_) {
      if (!first) out += ", ";
      out += a->ToPython();
      first = false;
    }
    return out + ")";
  }

  void Accept(ExprVisitor& v) const override {
    v.VisitCall(*this, info_.name, series_, scalars_);
  }

 private:
  FuncInfo info_;
  std::vector<ExprPtr> series_;
  std::vector<ExprPtr> scalars_;
};

class UnaryNode : public ExprNode {
 public:
  enum Op { kNeg, kNot };
  UnaryNode(Op op, ExprPtr inner) : op_(op), inner_(std::move(inner)) {}

  double EvalScalar(const WindowContext& ctx) const override {
    double v = inner_->EvalScalar(ctx);
    return op_ == kNeg ? -v : (v == 0.0 ? 1.0 : 0.0);
  }
  std::string ToPython() const override {
    return op_ == kNeg ? "(-" + inner_->ToPython() + ")"
                       : "(not " + inner_->ToPython() + ")";
  }

  void Accept(ExprVisitor& v) const override {
    v.VisitUnary(*this, op_ == kNeg ? UnOp::kNeg : UnOp::kNot, *inner_);
  }

 private:
  Op op_;
  ExprPtr inner_;
};

class BinaryNode : public ExprNode {
 public:
  BinaryNode(Tok op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  double EvalScalar(const WindowContext& ctx) const override {
    // Short-circuit logical operators.
    if (op_ == Tok::kAnd) {
      return lhs_->EvalScalar(ctx) != 0.0 && rhs_->EvalScalar(ctx) != 0.0
                 ? 1.0
                 : 0.0;
    }
    if (op_ == Tok::kOr) {
      return lhs_->EvalScalar(ctx) != 0.0 || rhs_->EvalScalar(ctx) != 0.0
                 ? 1.0
                 : 0.0;
    }
    double a = lhs_->EvalScalar(ctx);
    double b = rhs_->EvalScalar(ctx);
    switch (op_) {
      case Tok::kPlus: return a + b;
      case Tok::kMinus: return a - b;
      case Tok::kStar: return a * b;
      case Tok::kSlash: return b == 0.0 ? 0.0 : a / b;
      case Tok::kLt: return a < b ? 1.0 : 0.0;
      case Tok::kGt: return a > b ? 1.0 : 0.0;
      case Tok::kLe: return a <= b ? 1.0 : 0.0;
      case Tok::kGe: return a >= b ? 1.0 : 0.0;
      case Tok::kEq: return a == b ? 1.0 : 0.0;
      case Tok::kNe: return a != b ? 1.0 : 0.0;
      default: throw DslError("internal: bad binary operator");
    }
  }

  std::string ToPython() const override {
    static const std::map<Tok, std::string> kOps = {
        {Tok::kPlus, "+"}, {Tok::kMinus, "-"}, {Tok::kStar, "*"},
        {Tok::kSlash, "/"}, {Tok::kLt, "<"}, {Tok::kGt, ">"},
        {Tok::kLe, "<="}, {Tok::kGe, ">="}, {Tok::kEq, "=="},
        {Tok::kNe, "!="}, {Tok::kAnd, "and"}, {Tok::kOr, "or"},
    };
    std::string out = "(";
    out += lhs_->ToPython();
    out += " ";
    out += kOps.at(op_);
    out += " ";
    out += rhs_->ToPython();
    out += ")";
    return out;
  }

  void Accept(ExprVisitor& v) const override {
    v.VisitBinary(*this, ToBinOp(op_), *lhs_, *rhs_);
  }

 private:
  static BinOp ToBinOp(Tok op) {
    switch (op) {
      case Tok::kPlus: return BinOp::kAdd;
      case Tok::kMinus: return BinOp::kSub;
      case Tok::kStar: return BinOp::kMul;
      case Tok::kSlash: return BinOp::kDiv;
      case Tok::kLt: return BinOp::kLt;
      case Tok::kGt: return BinOp::kGt;
      case Tok::kLe: return BinOp::kLe;
      case Tok::kGe: return BinOp::kGe;
      case Tok::kEq: return BinOp::kEq;
      case Tok::kNe: return BinOp::kNe;
      case Tok::kAnd: return BinOp::kAnd;
      default: return BinOp::kOr;
    }
  }

  Tok op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// ---------------------------------------------------------------------------
// Series name resolution. Units and ranges come from the declared telemetry
// schema (lint/schema.h) — the single source of truth shared with the
// domino-verify pass.
// ---------------------------------------------------------------------------

using Unit = lint::Unit;
using lint::UnitName;

const TimeSeries<double>* ResolveDirSeries(const telemetry::DirectionSeries& d,
                                           const std::string& name) {
  if (name == "tbs") return &d.tbs_bytes;
  if (name == "prb_self") return &d.prb_self;
  if (name == "prb_other") return &d.prb_other;
  if (name == "mcs") return &d.mcs;
  if (name == "harq_retx") return &d.harq_retx;
  if (name == "rlc_retx") return &d.rlc_retx;
  if (name == "owd_ms") return &d.owd_ms;
  if (name == "app_bitrate") return &d.app_bitrate_bps;
  if (name == "tbs_bitrate") return &d.tbs_bitrate_bps;
  if (name == "rnti") return &d.rnti;
  return nullptr;
}

const TimeSeries<double>* ResolveClientSeries(
    const telemetry::ClientSeries& c, const std::string& name) {
  if (name == "inbound_fps") return &c.inbound_fps;
  if (name == "outbound_fps") return &c.outbound_fps;
  if (name == "outbound_resolution") return &c.outbound_resolution;
  if (name == "jitter_buffer_ms") return &c.jitter_buffer_ms;
  if (name == "target_bitrate") return &c.target_bitrate_bps;
  if (name == "pushback_rate") return &c.pushback_bitrate_bps;
  if (name == "outstanding_bytes") return &c.outstanding_bytes;
  if (name == "cwnd_bytes") return &c.cwnd_bytes;
  if (name == "overuse") return &c.overuse;
  return nullptr;
}

bool IsDirScope(const std::string& s) { return lint::IsDirScopeName(s); }
bool IsClientScope(const std::string& s) {
  return lint::IsClientScopeName(s);
}

const lint::SeriesSchema* FindSeriesEntry(const std::string& scope,
                                          const std::string& name) {
  return lint::FindSeriesSchema(scope, name);
}

// ---------------------------------------------------------------------------
// Parser with bottom-up semantic synthesis
// ---------------------------------------------------------------------------

/// Interval bound on an expression's value, for constant folding:
/// comparisons whose operand intervals cannot overlap (or always must) are
/// tautological/unsatisfiable predicates.
struct ValueRange {
  double lo = -kInf;
  double hi = kInf;
  bool known = false;
};

ValueRange KnownRange(double lo, double hi) { return {lo, hi, true}; }

std::string FormatRange(const ValueRange& r) {
  std::string out = "[";
  out += FormatNum(r.lo);
  out += ", ";
  out += FormatNum(r.hi);
  out += "]";
  return out;
}

/// Annotated subexpression: the AST plus everything the semantic checker
/// synthesizes bottom-up. `poisoned` marks recovered-from errors so one
/// mistake does not cascade into follow-on diagnostics.
struct Ann {
  ExprPtr expr;
  bool series = false;
  bool boolean = false;
  bool poisoned = false;
  ValueRange range;
  Unit unit = Unit::kUnknown;
  std::string unit_src;  ///< e.g. "fwd.owd_ms", for unit-mismatch messages.
  std::size_t begin = 0;
  std::size_t end = 0;
};

class Parser {
 public:
  Parser(const std::string& src, DiagnosticSink* sink,
         const InputLimits& limits = {})
      : src_(src), lexer_(src, sink), sink_(sink), limits_(limits) {}

  Ann Parse() {
    Ann e = ParseOr();
    if (lexer_.peek().kind != Tok::kEnd) {
      Error("DL004", SpanBetween(lexer_.peek().pos, src_.size()),
            "unexpected trailing input");
      while (lexer_.peek().kind != Tok::kEnd) lexer_.Take();
      e.poisoned = true;
    }
    return e;
  }

 private:
  /// In sink mode records the diagnostic and returns (the caller recovers);
  /// in legacy mode throws DslError carrying the 1-based column.
  void Error(const char* code, SourceSpan span, const std::string& msg,
             std::string fixit = "") {
    if (sink_ != nullptr) {
      sink_->Error(code, span, msg, std::move(fixit));
      return;
    }
    throw DslError(msg + " (column " + std::to_string(span.col) + ")");
  }

  void Warn(const char* code, SourceSpan span, const std::string& msg,
            std::string fixit = "") {
    // Warnings exist only for the lint front-end; the legacy throwing path
    // has always accepted these expressions and must keep doing so.
    if (sink_ != nullptr) sink_->Warning(code, span, msg, std::move(fixit));
  }

  std::string Text(const Ann& a) const {
    return src_.substr(a.begin, a.end - a.begin);
  }

  static SourceSpan SpanOfAnn(const Ann& a) {
    return SpanBetween(a.begin, a.end);
  }

  static Ann Poisoned(std::size_t begin, std::size_t end, bool series) {
    Ann a;
    auto node = std::make_shared<NumberNode>(0.0);
    node->SetSrcRange(begin, end);
    a.expr = node;
    a.series = series;
    a.poisoned = true;
    a.begin = begin;
    a.end = end;
    return a;
  }

  /// Series where a scalar is required (operators, conditions). Emits DL105
  /// with a wrap-in-aggregate fix-it and poisons the operand.
  void RequireScalar(Ann& a, const std::string& where) {
    if (!a.series || a.poisoned) return;
    Error("DL105", SpanOfAnn(a),
          "series '" + Text(a) + "' used where a scalar was expected (" +
              where + "); wrap it in an aggregate like max() or mean()",
          "max(" + Text(a) + ")");
    a.series = false;
    a.poisoned = true;
  }

  /// Recursion/size budget (DL006). The grammar recurses through ParseOr
  /// (parenthesized groups, call arguments) and ParseUnary (chained
  /// unary operators); both check the depth budget on entry. On a blown
  /// budget the rest of the input is skipped — a pathological expression
  /// must cost O(len) work and O(max_expr_depth) stack, never a stack
  /// overflow or an exponential diagnostic cascade.
  bool EnterBudgeted(std::size_t pos) {
    ++nodes_;
    if (depth_ < limits_.max_expr_depth && nodes_ <= limits_.max_expr_nodes) {
      ++depth_;
      return true;
    }
    if (!budget_blown_) {
      budget_blown_ = true;
      Error("DL006", SpanBetween(pos, src_.size()),
            depth_ >= limits_.max_expr_depth
                ? "expression nests deeper than " +
                      std::to_string(limits_.max_expr_depth) + " levels"
                : "expression has more than " +
                      std::to_string(limits_.max_expr_nodes) + " nodes");
    }
    while (lexer_.peek().kind != Tok::kEnd) lexer_.Take();
    return false;
  }
  void LeaveBudgeted() { --depth_; }

  Ann ParseOr() {
    if (!EnterBudgeted(lexer_.peek().pos)) {
      return Poisoned(lexer_.peek().pos, src_.size(), false);
    }
    Ann lhs = ParseAnd();
    while (lexer_.peek().kind == Tok::kOr) {
      Token op = lexer_.Take();
      lhs = MakeBinary(Tok::kOr, op, std::move(lhs), ParseAnd());
    }
    LeaveBudgeted();
    return lhs;
  }

  Ann ParseAnd() {
    Ann lhs = ParseCmp();
    while (lexer_.peek().kind == Tok::kAnd) {
      Token op = lexer_.Take();
      lhs = MakeBinary(Tok::kAnd, op, std::move(lhs), ParseCmp());
    }
    return lhs;
  }

  Ann ParseCmp() {
    Ann lhs = ParseSum();
    Tok k = lexer_.peek().kind;
    if (k == Tok::kLt || k == Tok::kGt || k == Tok::kLe || k == Tok::kGe ||
        k == Tok::kEq || k == Tok::kNe) {
      Token op = lexer_.Take();
      return MakeBinary(k, op, std::move(lhs), ParseSum());
    }
    return lhs;
  }

  Ann ParseSum() {
    Ann lhs = ParseProd();
    for (;;) {
      Tok k = lexer_.peek().kind;
      if (k != Tok::kPlus && k != Tok::kMinus) return lhs;
      Token op = lexer_.Take();
      lhs = MakeBinary(k, op, std::move(lhs), ParseProd());
    }
  }

  Ann ParseProd() {
    Ann lhs = ParseUnary();
    for (;;) {
      Tok k = lexer_.peek().kind;
      if (k != Tok::kStar && k != Tok::kSlash) return lhs;
      Token op = lexer_.Take();
      lhs = MakeBinary(k, op, std::move(lhs), ParseUnary());
    }
  }

  Ann ParseUnary() {
    if (!EnterBudgeted(lexer_.peek().pos)) {
      return Poisoned(lexer_.peek().pos, src_.size(), false);
    }
    Ann out = ParseUnaryInner();
    LeaveBudgeted();
    return out;
  }

  Ann ParseUnaryInner() {
    if (lexer_.peek().kind == Tok::kMinus) {
      Token op = lexer_.Take();
      Ann inner = ParseUnary();
      RequireScalar(inner, "operand of unary '-'");
      Ann out;
      auto node = std::make_shared<UnaryNode>(UnaryNode::kNeg, inner.expr);
      node->SetSrcRange(op.pos, inner.end);
      out.expr = node;
      out.poisoned = inner.poisoned;
      if (inner.range.known) {
        out.range = KnownRange(-inner.range.hi, -inner.range.lo);
      }
      out.unit = inner.unit;
      out.unit_src = inner.unit_src;
      out.begin = op.pos;
      out.end = inner.end;
      return out;
    }
    if (lexer_.peek().kind == Tok::kNot) {
      Token op = lexer_.Take();
      Ann inner = ParseUnary();
      RequireScalar(inner, "operand of 'not'");
      Ann out;
      auto node = std::make_shared<UnaryNode>(UnaryNode::kNot, inner.expr);
      node->SetSrcRange(op.pos, inner.end);
      out.expr = node;
      out.poisoned = inner.poisoned;
      out.boolean = true;
      out.range = KnownRange(0, 1);
      out.begin = op.pos;
      out.end = inner.end;
      return out;
    }
    return ParsePrimary();
  }

  Ann ParsePrimary() {
    for (;;) {
      Token t = lexer_.peek();
      switch (t.kind) {
        case Tok::kNumber: {
          lexer_.Take();
          Ann a;
          auto node = std::make_shared<NumberNode>(t.number);
          node->SetSrcRange(t.pos, t.pos + t.len);
          a.expr = node;
          a.range = KnownRange(t.number, t.number);
          a.begin = t.pos;
          a.end = t.pos + t.len;
          return a;
        }
        case Tok::kLParen: {
          lexer_.Take();
          Ann e = ParseOr();
          e.begin = t.pos;
          e.end = ExpectClose(e.end);
          return e;
        }
        case Tok::kIdent:
          lexer_.Take();
          return ParseIdent(t);
        default:
          Error("DL003", SpanOf(t.kind == Tok::kEnd
                                    ? Token{Tok::kEnd, 0, "", src_.size(), 0}
                                    : t),
                "expected an expression");
          if (t.kind == Tok::kEnd) {
            return Poisoned(src_.size(), src_.size(), false);
          }
          lexer_.Take();  // sink mode: skip the offender and retry
      }
    }
  }

  /// Expects ')' and returns the offset just past it (or `fallback_end` when
  /// recovering from a missing one).
  std::size_t ExpectClose(std::size_t fallback_end) {
    if (lexer_.peek().kind == Tok::kRParen) {
      Token r = lexer_.Take();
      return r.pos + r.len;
    }
    Error("DL003", SpanOf(lexer_.peek()), "expected ')'");
    return fallback_end;
  }

  Ann ParseIdent(const Token& ident) {
    if (lexer_.peek().kind == Tok::kDot) {
      lexer_.Take();
      return ParseSeriesRef(ident);
    }
    const FuncInfo* fn = FindFunc(ident.text);
    if (fn == nullptr) {
      std::vector<std::string> candidates;
      for (const auto& f : kFuncs) candidates.emplace_back(f.name);
      for (const auto& s : KnownScopes()) candidates.push_back(s);
      std::string hint = lint::DidYouMean(ident.text, candidates);
      Error("DL103", SpanOf(ident),
            "unknown function or scope '" + ident.text + "'" +
                lint::DidYouMeanSuffix(hint),
            hint);
      // Recovery: swallow a call-looking argument list so its tokens do not
      // produce follow-on noise.
      std::size_t end = ident.pos + ident.len;
      if (lexer_.peek().kind == Tok::kLParen) {
        lexer_.Take();
        if (lexer_.peek().kind != Tok::kRParen &&
            lexer_.peek().kind != Tok::kEnd) {
          ParseOr();
          while (lexer_.peek().kind == Tok::kComma) {
            lexer_.Take();
            ParseOr();
          }
        }
        end = ExpectClose(end);
      }
      return Poisoned(ident.pos, end, false);
    }
    return ParseCall(*fn, ident);
  }

  Ann ParseSeriesRef(const Token& scope) {
    if (lexer_.peek().kind != Tok::kIdent) {
      Error("DL003", SpanOf(lexer_.peek()),
            "expected a series name after '" + scope.text + ".'");
      return Poisoned(scope.pos, scope.pos + scope.len + 1, true);
    }
    Token name = lexer_.Take();
    std::size_t begin = scope.pos;
    std::size_t end = name.pos + name.len;

    bool dir = IsDirScope(scope.text);
    bool client = IsClientScope(scope.text);
    if (!dir && !client) {
      std::string hint = lint::DidYouMean(scope.text, KnownScopes());
      Error("DL101", SpanOf(scope),
            "unknown scope '" + scope.text + "'" +
                lint::DidYouMeanSuffix(hint),
            hint);
      return Poisoned(begin, end, true);
    }
    const lint::SeriesSchema* entry = FindSeriesEntry(scope.text, name.text);
    if (entry == nullptr) {
      const char* kind = dir ? "5G" : "client";
      std::vector<std::string> known =
          dir ? KnownDirSeries() : KnownClientSeries();
      std::string hint = lint::DidYouMean(name.text, known);
      std::string msg = "unknown " + std::string(kind) + " series '" +
                        name.text + "' in scope '" + scope.text + "'" +
                        lint::DidYouMeanSuffix(hint);
      // The name may belong to the other scope kind — say so.
      if (FindSeriesEntry(dir ? "sender" : "fwd", name.text) != nullptr) {
        msg += dir ? " ('" + name.text +
                         "' is a client series; use sender/receiver/ue/"
                         "remote)"
                   : " ('" + name.text +
                         "' is a 5G direction series; use fwd/rev/ul/dl)";
      }
      Error("DL102", SpanOf(name), msg, hint);
      return Poisoned(begin, end, true);
    }
    Ann a;
    auto node = std::make_shared<SeriesNode>(scope.text, name.text);
    node->SetSrcRange(begin, end);
    a.expr = node;
    a.series = true;
    a.unit = entry->unit;
    a.unit_src = scope.text + "." + name.text;
    a.begin = begin;
    a.end = end;
    return a;
  }

  Ann ParseCall(const FuncInfo& fn, const Token& ident) {
    std::size_t end = ident.pos + ident.len;
    if (lexer_.peek().kind != Tok::kLParen) {
      Error("DL003", SpanOf(lexer_.peek()),
            std::string("expected '(' after '") + fn.name + "'");
      return Poisoned(ident.pos, end, false);
    }
    lexer_.Take();
    std::vector<Ann> args;
    if (lexer_.peek().kind != Tok::kRParen &&
        lexer_.peek().kind != Tok::kEnd) {
      args.push_back(ParseOr());
      while (lexer_.peek().kind == Tok::kComma) {
        lexer_.Take();
        args.push_back(ParseOr());
      }
    }
    end = ExpectClose(args.empty() ? end : args.back().end);

    const int expected = fn.series_args + fn.scalar_args;
    if (static_cast<int>(args.size()) != expected) {
      Error("DL112", SpanOf(ident),
            std::string(fn.name) + " expects " + std::to_string(expected) +
                " argument(s), got " + std::to_string(args.size()));
      return Poisoned(ident.pos, end, false);
    }
    bool poisoned = false;
    for (int i = 0; i < expected; ++i) {
      Ann& a = args[static_cast<std::size_t>(i)];
      poisoned = poisoned || a.poisoned;
      if (a.poisoned) continue;
      if (i < fn.series_args && !a.series) {
        Error("DL104", SpanOfAnn(a),
              std::string(fn.name) + ": argument " + std::to_string(i + 1) +
                  " must be a series (a 'scope.name' reference)");
        poisoned = true;
      } else if (i >= fn.series_args && a.series) {
        Error("DL104", SpanOfAnn(a),
              std::string(fn.name) + ": argument " + std::to_string(i + 1) +
                  " must be a scalar; wrap the series in an aggregate",
              "mean(" + Text(a) + ")");
        poisoned = true;
      }
    }
    if (poisoned) return Poisoned(ident.pos, end, false);

    std::vector<ExprPtr> series, scalars;
    for (int i = 0; i < expected; ++i) {
      (i < fn.series_args ? series : scalars)
          .push_back(args[static_cast<std::size_t>(i)].expr);
    }
    Ann out;
    auto node = std::make_shared<FuncNode>(fn, std::move(series),
                                           std::move(scalars));
    node->SetSrcRange(ident.pos, end);
    out.expr = node;
    out.begin = ident.pos;
    out.end = end;
    AnnotateCall(fn, args, ident, out);
    return out;
  }

  /// Synthesizes range/unit/boolean facts for a call and runs the
  /// call-specific semantic checks (percentile rank, paired units).
  void AnnotateCall(const FuncInfo& fn, const std::vector<Ann>& args,
                    const Token& ident, Ann& out) {
    const Ann& s0 = args[0];
    switch (fn.id) {
      case Func::kCount:
      case Func::kCountBelow:
      case Func::kCountAbove:
        out.range = KnownRange(0, kInf);
        out.unit = Unit::kCount;
        break;
      case Func::kFracGt:
        out.range = KnownRange(0, 1);
        break;
      case Func::kAnyGt:
      case Func::kHasDrop:
      case Func::kHasRise:
      case Func::kTrendUp:
      case Func::kTrendDown:
        out.range = KnownRange(0, 1);
        out.boolean = true;
        break;
      case Func::kMin:
      case Func::kMax:
      case Func::kMean:
      case Func::kFirst:
      case Func::kLast:
      case Func::kSum:
      case Func::kStdDev:
      case Func::kPercentile:
        out.unit = s0.unit;
        out.unit_src = s0.unit_src;
        // A boolean series stays in [0, 1] under order statistics (and the
        // empty-window default is 0).
        if (s0.unit == Unit::kBool && fn.id != Func::kSum &&
            fn.id != Func::kStdDev) {
          out.range = KnownRange(0, 1);
        }
        break;
    }

    if (fn.id == Func::kPercentile) {
      const Ann& q = args[1];
      if (q.range.known && q.range.lo == q.range.hi && !q.poisoned) {
        double v = q.range.lo;
        if (v < 0 || v > 100) {
          Error("DL106", SpanOfAnn(q),
                "percentile rank " + FormatNum(v) +
                    " is outside [0, 100]; p() takes a percentage",
                v < 0 ? "0" : "100");
        } else if (v > 0 && v < 2 && v != std::floor(v)) {
          Warn("DL107", SpanOfAnn(q),
               "percentile rank " + FormatNum(v) +
                   " looks like a fraction; ranks are percentages in "
                   "[0, 100] (the " +
                   FormatNum(v) + "th percentile is nearly the minimum)",
               FormatNum(v * 100));
        }
      }
    }
    if ((fn.id == Func::kFracGt || fn.id == Func::kAnyGt) &&
        args[0].unit != Unit::kUnknown && args[1].unit != Unit::kUnknown &&
        args[0].unit != args[1].unit) {
      Warn("DL110", SpanOf(ident),
           std::string(fn.name) + " compares " + args[0].unit_src + " (" +
               UnitName(args[0].unit) + ") against " + args[1].unit_src +
               " (" + UnitName(args[1].unit) + ") element-wise");
    }
    if ((fn.id == Func::kCountBelow || fn.id == Func::kCountAbove) &&
        args[0].unit != Unit::kUnknown && args[1].unit != Unit::kUnknown &&
        args[0].unit != args[1].unit) {
      Warn("DL110", SpanOfAnn(args[1]),
           std::string(fn.name) + " threshold is " +
               UnitName(args[1].unit) + " but the series " +
               args[0].unit_src + " is " + UnitName(args[0].unit));
    }
  }

  Ann MakeBinary(Tok op, const Token& op_tok, Ann lhs, Ann rhs) {
    const char* opname = OpName(op);
    RequireScalar(lhs, std::string("operand of '") + opname + "'");
    RequireScalar(rhs, std::string("operand of '") + opname + "'");
    Ann out;
    auto node = std::make_shared<BinaryNode>(op, lhs.expr, rhs.expr);
    node->SetSrcRange(lhs.begin, rhs.end);
    out.expr = node;
    out.poisoned = lhs.poisoned || rhs.poisoned;
    out.begin = lhs.begin;
    out.end = rhs.end;
    switch (op) {
      case Tok::kPlus:
      case Tok::kMinus:
        out.range = Combine(op, lhs.range, rhs.range);
        CheckAdditiveUnits(op_tok, lhs, rhs, out);
        break;
      case Tok::kStar:
        out.range = Combine(op, lhs.range, rhs.range);
        break;
      case Tok::kSlash:
        break;  // guarded division; range and unit unknown
      case Tok::kAnd:
      case Tok::kOr:
        out.boolean = true;
        out.range = KnownRange(0, 1);
        break;
      default:  // comparisons
        out.boolean = true;
        out.range = KnownRange(0, 1);
        CheckComparison(op, op_tok, lhs, rhs);
        break;
    }
    return out;
  }

  static const char* OpName(Tok op) {
    switch (op) {
      case Tok::kPlus: return "+";
      case Tok::kMinus: return "-";
      case Tok::kStar: return "*";
      case Tok::kSlash: return "/";
      case Tok::kLt: return "<";
      case Tok::kGt: return ">";
      case Tok::kLe: return "<=";
      case Tok::kGe: return ">=";
      case Tok::kEq: return "==";
      case Tok::kNe: return "!=";
      case Tok::kAnd: return "and";
      case Tok::kOr: return "or";
      default: return "?";
    }
  }

  static ValueRange Combine(Tok op, const ValueRange& a, const ValueRange& b) {
    if (!a.known || !b.known) return {};
    auto finite = [](double v) { return !std::isnan(v); };
    switch (op) {
      case Tok::kPlus: {
        double lo = a.lo + b.lo, hi = a.hi + b.hi;
        if (!finite(lo) || !finite(hi)) return {};
        return KnownRange(lo, hi);
      }
      case Tok::kMinus: {
        double lo = a.lo - b.hi, hi = a.hi - b.lo;
        if (!finite(lo) || !finite(hi)) return {};
        return KnownRange(lo, hi);
      }
      case Tok::kStar: {
        double c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
        double lo = c[0], hi = c[0];
        for (double v : c) {
          if (!finite(v)) return {};
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        return KnownRange(lo, hi);
      }
      default:
        return {};
    }
  }

  void CheckAdditiveUnits(const Token& op_tok, const Ann& lhs, const Ann& rhs,
                          Ann& out) {
    if (lhs.unit != Unit::kUnknown && rhs.unit != Unit::kUnknown) {
      if (lhs.unit != rhs.unit && !out.poisoned) {
        Warn("DL110", SpanOf(op_tok),
             std::string(OpName(op_tok.kind == Tok::kMinus ? Tok::kMinus
                                                           : Tok::kPlus)) +
                 " mixes " + lhs.unit_src + " (" + UnitName(lhs.unit) +
                 ") with " + rhs.unit_src + " (" + UnitName(rhs.unit) + ")");
        return;  // result unit stays unknown
      }
      out.unit = lhs.unit;
      out.unit_src = lhs.unit_src;
      return;
    }
    // A plain number offsets a quantity without changing its unit.
    const Ann& known = lhs.unit != Unit::kUnknown ? lhs : rhs;
    out.unit = known.unit;
    out.unit_src = known.unit_src;
  }

  void CheckComparison(Tok op, const Token& op_tok, const Ann& lhs,
                       const Ann& rhs) {
    if (lhs.poisoned || rhs.poisoned) return;
    if (lhs.unit != Unit::kUnknown && rhs.unit != Unit::kUnknown &&
        lhs.unit != rhs.unit) {
      Warn("DL110", SpanOf(op_tok),
           "comparing " + lhs.unit_src + " (" + UnitName(lhs.unit) +
               ") against " + rhs.unit_src + " (" + UnitName(rhs.unit) + ")");
    }
    if (!lhs.range.known || !rhs.range.known) return;
    int verdict = FoldComparison(op, lhs.range, rhs.range);
    if (verdict < 0) return;
    SourceSpan span = SpanBetween(lhs.begin, rhs.end);
    std::string ranges = " (left is in " + FormatRange(lhs.range) +
                         ", right in " + FormatRange(rhs.range) + ")";
    if (verdict == 1) {
      Warn("DL108", span, "comparison is always true" + ranges);
    } else {
      Warn("DL109", span, "comparison is always false" + ranges);
    }
  }

  /// 1 = tautology, 0 = unsatisfiable, -1 = genuinely data-dependent.
  static int FoldComparison(Tok op, const ValueRange& a, const ValueRange& b) {
    switch (op) {
      case Tok::kLt:
        if (a.hi < b.lo) return 1;
        if (a.lo >= b.hi) return 0;
        return -1;
      case Tok::kLe:
        if (a.hi <= b.lo) return 1;
        if (a.lo > b.hi) return 0;
        return -1;
      case Tok::kGt:
        if (a.lo > b.hi) return 1;
        if (a.hi <= b.lo) return 0;
        return -1;
      case Tok::kGe:
        if (a.lo >= b.hi) return 1;
        if (a.hi < b.lo) return 0;
        return -1;
      case Tok::kEq:
        if (a.lo == a.hi && b.lo == b.hi && a.lo == b.lo) return 1;
        if (a.hi < b.lo || b.hi < a.lo) return 0;
        return -1;
      case Tok::kNe:
        if (a.hi < b.lo || b.hi < a.lo) return 1;
        if (a.lo == a.hi && b.lo == b.hi && a.lo == b.lo) return 0;
        return -1;
      default:
        return -1;
    }
  }

  const std::string& src_;
  Lexer lexer_;
  DiagnosticSink* sink_;
  InputLimits limits_;
  std::size_t depth_ = 0;
  std::size_t nodes_ = 0;
  bool budget_blown_ = false;
};

}  // namespace

const TimeSeries<double>* SeriesNode::Resolve(const WindowContext& ctx) const {
  if (IsDirScope(scope_)) {
    const telemetry::DirectionSeries* d = nullptr;
    if (scope_ == "fwd") {
      d = &ctx.Dir(PathLeg::kFwd);
    } else if (scope_ == "rev") {
      d = &ctx.Dir(PathLeg::kRev);
    } else if (scope_ == "ul") {
      d = &ctx.trace().dir[0];
    } else {
      d = &ctx.trace().dir[1];
    }
    return ResolveDirSeries(*d, name_);
  }
  const telemetry::ClientSeries* c = nullptr;
  if (scope_ == "sender") {
    c = &ctx.Sender();
  } else if (scope_ == "receiver") {
    c = &ctx.Receiver();
  } else if (scope_ == "ue") {
    c = &ctx.trace().client[0];
  } else {
    c = &ctx.trace().client[1];
  }
  return ResolveClientSeries(*c, name_);
}

ExprPtr ParseExpression(const std::string& text) {
  Parser p(text, nullptr);
  return p.Parse().expr;
}

CheckedExpr ParseExpressionChecked(const std::string& text,
                                   lint::DiagnosticSink& sink,
                                   const InputLimits& limits) {
  std::size_t errors_before = sink.error_count();
  Parser p(text, &sink, limits);
  Ann a = p.Parse();
  CheckedExpr out;
  out.is_series = a.series;
  out.is_boolean = a.boolean;
  if (sink.error_count() == errors_before) out.expr = a.expr;
  return out;
}

std::vector<std::string> KnownDirSeries() {
  std::vector<std::string> out;
  for (const auto& e : lint::TelemetrySchema()) {
    if (e.scope == lint::SchemaScope::kDirection) out.emplace_back(e.name);
  }
  return out;
}
std::vector<std::string> KnownClientSeries() {
  std::vector<std::string> out;
  for (const auto& e : lint::TelemetrySchema()) {
    if (e.scope == lint::SchemaScope::kClient) out.emplace_back(e.name);
  }
  return out;
}
std::vector<std::string> KnownScopes() {
  return {"fwd", "rev", "ul", "dl", "sender", "receiver", "ue", "remote"};
}

}  // namespace domino::analysis
