#include "domino/graph.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "domino/lint/suggest.h"

namespace domino::analysis {

int CausalGraph::AddNode(Node node) {
  if (FindNode(node.name) >= 0) {
    throw std::invalid_argument("CausalGraph: duplicate node " + node.name);
  }
  nodes_.push_back(std::move(node));
  adj_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

int CausalGraph::AddBuiltinNode(const std::string& name, NodeKind kind,
                                EventRef ref, const EventThresholds& th) {
  Node n;
  n.name = name;
  n.kind = kind;
  n.builtin = ref;
  n.builtin_thresholds = th;
  n.detect = [ref, th](const WindowContext& ctx) {
    return DetectEvent(ref, ctx, th);
  };
  return AddNode(std::move(n));
}

int CausalGraph::FindNode(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void CausalGraph::AddEdge(const std::string& from, const std::string& to) {
  int f = FindNode(from);
  int t = FindNode(to);
  if (f < 0 || t < 0) {
    // Name the endpoint that is actually missing (both, when both are).
    std::string missing = f < 0 ? "'" + from + "'" : "";
    if (t < 0) missing += (missing.empty() ? "'" : " and '") + to + "'";
    std::vector<std::string> names;
    names.reserve(nodes_.size());
    for (const auto& n : nodes_) names.push_back(n.name);
    std::string hint = lint::DidYouMean(f < 0 ? from : to, names);
    throw std::invalid_argument("CausalGraph: unknown node " + missing +
                                " in edge " + from + " -> " + to +
                                lint::DidYouMeanSuffix(hint));
  }
  AddEdge(f, t);
}

void CausalGraph::AddEdge(int from, int to) {
  const int n = static_cast<int>(nodes_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) {
    throw std::invalid_argument(
        "CausalGraph: edge endpoint out of range (" + std::to_string(from) +
        " -> " + std::to_string(to) + ", " + std::to_string(n) + " nodes)");
  }
  adj_[static_cast<std::size_t>(from)].push_back(to);
}

std::vector<int> CausalGraph::FindCycle() const {
  enum Color : char { kWhite, kGray, kBlack };
  std::vector<Color> color(nodes_.size(), kWhite);
  std::vector<int> stack;
  std::vector<int> cycle;
  std::function<bool(int)> dfs = [&](int n) {
    color[static_cast<std::size_t>(n)] = kGray;
    stack.push_back(n);
    for (int t : adj_[static_cast<std::size_t>(n)]) {
      if (color[static_cast<std::size_t>(t)] == kGray) {
        auto it = std::find(stack.begin(), stack.end(), t);
        cycle.assign(it, stack.end());
        cycle.push_back(t);
        return true;
      }
      if (color[static_cast<std::size_t>(t)] == kWhite && dfs(t)) return true;
    }
    color[static_cast<std::size_t>(n)] = kBlack;
    stack.pop_back();
    return false;
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (color[i] == kWhite && dfs(static_cast<int>(i))) return cycle;
  }
  return {};
}

void CausalGraph::Validate() const {
  std::vector<int> cycle = FindCycle();
  if (!cycle.empty()) {
    std::string path;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) path += " -> ";
      path += nodes_[static_cast<std::size_t>(cycle[i])].name;
    }
    throw std::runtime_error("CausalGraph: cycle detected: " + path);
  }
}

std::vector<ChainPath> CausalGraph::EnumerateChains() const {
  std::vector<ChainPath> chains;
  ChainPath path;
  // DFS from each cause; record every time we hit a consequence node.
  std::function<void(int)> dfs = [&](int n) {
    path.push_back(n);
    if (nodes_[static_cast<std::size_t>(n)].kind == NodeKind::kConsequence) {
      chains.push_back(path);
    } else {
      for (int t : adj_[static_cast<std::size_t>(n)]) dfs(t);
    }
    path.pop_back();
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kCause) dfs(static_cast<int>(i));
  }
  return chains;
}

CausalGraph CausalGraph::Default(const EventThresholds& th) {
  CausalGraph g;
  using ET = EventType;
  const std::array<std::pair<const char*, ET>, 6> causes = {{
      {"poor_channel", ET::kChannelDegrade},
      {"cross_traffic", ET::kCrossTraffic},
      {"ul_scheduling", ET::kUlScheduling},
      {"harq_retx", ET::kHarqRetx},
      {"rlc_retx", ET::kRlcRetx},
      {"rrc_change", ET::kRrcChange},
  }};

  // Forward-leg cause nodes and the capacity intermediates they act through.
  for (const auto& [name, type] : causes) {
    g.AddBuiltinNode(name, NodeKind::kCause, EventRef{type, PathLeg::kFwd},
                     th);
    g.AddBuiltinNode(std::string(name) + "@rev", NodeKind::kCause,
                     EventRef{type, PathLeg::kRev}, th);
  }
  g.AddBuiltinNode("tbs_drop", NodeKind::kIntermediate,
                   EventRef{ET::kTbsDrop, PathLeg::kFwd}, th);
  g.AddBuiltinNode("rate_gap", NodeKind::kIntermediate,
                   EventRef{ET::kRateGap, PathLeg::kFwd}, th);
  g.AddBuiltinNode("tbs_drop@rev", NodeKind::kIntermediate,
                   EventRef{ET::kTbsDrop, PathLeg::kRev}, th);
  g.AddBuiltinNode("rate_gap@rev", NodeKind::kIntermediate,
                   EventRef{ET::kRateGap, PathLeg::kRev}, th);
  g.AddBuiltinNode("fwd_delay_up", NodeKind::kIntermediate,
                   EventRef{ET::kFwdDelayUp}, th);
  g.AddBuiltinNode("rev_delay_up", NodeKind::kIntermediate,
                   EventRef{ET::kRevDelayUp}, th);
  g.AddBuiltinNode("gcc_overuse", NodeKind::kIntermediate,
                   EventRef{ET::kGccOveruse}, th);
  g.AddBuiltinNode("outstanding_up", NodeKind::kIntermediate,
                   EventRef{ET::kOutstandingUp}, th);
  g.AddBuiltinNode("cwnd_full", NodeKind::kIntermediate,
                   EventRef{ET::kCwndFull}, th);
  g.AddBuiltinNode("jitter_buffer_drain", NodeKind::kConsequence,
                   EventRef{ET::kJitterBufferDrain}, th);
  g.AddBuiltinNode("target_bitrate_drop", NodeKind::kConsequence,
                   EventRef{ET::kTargetBitrateDrop}, th);
  g.AddBuiltinNode("pushback_drop", NodeKind::kConsequence,
                   EventRef{ET::kPushbackDrop}, th);

  // Radio-resource causes act through capacity loss; timing/reliability
  // causes inflate delay directly (§5).
  g.AddEdge("poor_channel", "tbs_drop");
  g.AddEdge("cross_traffic", "tbs_drop");
  g.AddEdge("tbs_drop", "rate_gap");
  g.AddEdge("rate_gap", "fwd_delay_up");
  g.AddEdge("ul_scheduling", "fwd_delay_up");
  g.AddEdge("harq_retx", "fwd_delay_up");
  g.AddEdge("rlc_retx", "fwd_delay_up");
  g.AddEdge("rrc_change", "fwd_delay_up");

  g.AddEdge("poor_channel@rev", "tbs_drop@rev");
  g.AddEdge("cross_traffic@rev", "tbs_drop@rev");
  g.AddEdge("tbs_drop@rev", "rate_gap@rev");
  g.AddEdge("rate_gap@rev", "rev_delay_up");
  g.AddEdge("ul_scheduling@rev", "rev_delay_up");
  g.AddEdge("harq_retx@rev", "rev_delay_up");
  g.AddEdge("rlc_retx@rev", "rev_delay_up");
  g.AddEdge("rrc_change@rev", "rev_delay_up");

  // Forward delay hits playback and both GCC controllers; reverse delay
  // only starves feedback, reaching the pushback controller (Fig. 22).
  g.AddEdge("fwd_delay_up", "jitter_buffer_drain");
  g.AddEdge("fwd_delay_up", "gcc_overuse");
  g.AddEdge("gcc_overuse", "target_bitrate_drop");
  g.AddEdge("fwd_delay_up", "outstanding_up");
  g.AddEdge("rev_delay_up", "outstanding_up");
  g.AddEdge("outstanding_up", "cwnd_full");
  g.AddEdge("cwnd_full", "pushback_drop");

  g.Validate();
  return g;
}

std::string FormatChain(const CausalGraph& graph, const ChainPath& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += graph.node(path[i]).name;
  }
  return out;
}

}  // namespace domino::analysis
