#include "domino/graph.h"

#include <array>
#include <stdexcept>
#include <utility>

namespace domino::analysis {

int CausalGraph::AddNode(Node node) {
  if (FindNode(node.name) >= 0) {
    throw std::invalid_argument("CausalGraph: duplicate node " + node.name);
  }
  nodes_.push_back(std::move(node));
  adj_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

int CausalGraph::AddBuiltinNode(const std::string& name, NodeKind kind,
                                EventRef ref, const EventThresholds& th) {
  Node n;
  n.name = name;
  n.kind = kind;
  n.builtin = ref;
  n.builtin_thresholds = th;
  n.detect = [ref, th](const WindowContext& ctx) {
    return DetectEvent(ref, ctx, th);
  };
  return AddNode(std::move(n));
}

int CausalGraph::FindNode(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void CausalGraph::AddEdge(const std::string& from, const std::string& to) {
  int f = FindNode(from);
  int t = FindNode(to);
  if (f < 0 || t < 0) {
    throw std::invalid_argument("CausalGraph: unknown node in edge " + from +
                                " -> " + to);
  }
  AddEdge(f, t);
}

void CausalGraph::AddEdge(int from, int to) {
  adj_[static_cast<std::size_t>(from)].push_back(to);
}

void CausalGraph::Validate() const {
  // Kahn's algorithm; leftover nodes indicate a cycle.
  std::vector<int> indeg(nodes_.size(), 0);
  for (const auto& out : adj_) {
    for (int t : out) ++indeg[static_cast<std::size_t>(t)];
  }
  std::vector<int> queue;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) queue.push_back(static_cast<int>(i));
  }
  std::size_t seen = 0;
  while (!queue.empty()) {
    int n = queue.back();
    queue.pop_back();
    ++seen;
    for (int t : adj_[static_cast<std::size_t>(n)]) {
      if (--indeg[static_cast<std::size_t>(t)] == 0) queue.push_back(t);
    }
  }
  if (seen != nodes_.size()) {
    throw std::runtime_error("CausalGraph: cycle detected");
  }
}

std::vector<ChainPath> CausalGraph::EnumerateChains() const {
  std::vector<ChainPath> chains;
  ChainPath path;
  // DFS from each cause; record every time we hit a consequence node.
  std::function<void(int)> dfs = [&](int n) {
    path.push_back(n);
    if (nodes_[static_cast<std::size_t>(n)].kind == NodeKind::kConsequence) {
      chains.push_back(path);
    } else {
      for (int t : adj_[static_cast<std::size_t>(n)]) dfs(t);
    }
    path.pop_back();
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kCause) dfs(static_cast<int>(i));
  }
  return chains;
}

CausalGraph CausalGraph::Default(const EventThresholds& th) {
  CausalGraph g;
  using ET = EventType;
  const std::array<std::pair<const char*, ET>, 6> causes = {{
      {"poor_channel", ET::kChannelDegrade},
      {"cross_traffic", ET::kCrossTraffic},
      {"ul_scheduling", ET::kUlScheduling},
      {"harq_retx", ET::kHarqRetx},
      {"rlc_retx", ET::kRlcRetx},
      {"rrc_change", ET::kRrcChange},
  }};

  // Forward-leg cause nodes and the capacity intermediates they act through.
  for (const auto& [name, type] : causes) {
    g.AddBuiltinNode(name, NodeKind::kCause, EventRef{type, PathLeg::kFwd},
                     th);
    g.AddBuiltinNode(std::string(name) + "@rev", NodeKind::kCause,
                     EventRef{type, PathLeg::kRev}, th);
  }
  g.AddBuiltinNode("tbs_drop", NodeKind::kIntermediate,
                   EventRef{ET::kTbsDrop, PathLeg::kFwd}, th);
  g.AddBuiltinNode("rate_gap", NodeKind::kIntermediate,
                   EventRef{ET::kRateGap, PathLeg::kFwd}, th);
  g.AddBuiltinNode("tbs_drop@rev", NodeKind::kIntermediate,
                   EventRef{ET::kTbsDrop, PathLeg::kRev}, th);
  g.AddBuiltinNode("rate_gap@rev", NodeKind::kIntermediate,
                   EventRef{ET::kRateGap, PathLeg::kRev}, th);
  g.AddBuiltinNode("fwd_delay_up", NodeKind::kIntermediate,
                   EventRef{ET::kFwdDelayUp}, th);
  g.AddBuiltinNode("rev_delay_up", NodeKind::kIntermediate,
                   EventRef{ET::kRevDelayUp}, th);
  g.AddBuiltinNode("gcc_overuse", NodeKind::kIntermediate,
                   EventRef{ET::kGccOveruse}, th);
  g.AddBuiltinNode("outstanding_up", NodeKind::kIntermediate,
                   EventRef{ET::kOutstandingUp}, th);
  g.AddBuiltinNode("cwnd_full", NodeKind::kIntermediate,
                   EventRef{ET::kCwndFull}, th);
  g.AddBuiltinNode("jitter_buffer_drain", NodeKind::kConsequence,
                   EventRef{ET::kJitterBufferDrain}, th);
  g.AddBuiltinNode("target_bitrate_drop", NodeKind::kConsequence,
                   EventRef{ET::kTargetBitrateDrop}, th);
  g.AddBuiltinNode("pushback_drop", NodeKind::kConsequence,
                   EventRef{ET::kPushbackDrop}, th);

  // Radio-resource causes act through capacity loss; timing/reliability
  // causes inflate delay directly (§5).
  g.AddEdge("poor_channel", "tbs_drop");
  g.AddEdge("cross_traffic", "tbs_drop");
  g.AddEdge("tbs_drop", "rate_gap");
  g.AddEdge("rate_gap", "fwd_delay_up");
  g.AddEdge("ul_scheduling", "fwd_delay_up");
  g.AddEdge("harq_retx", "fwd_delay_up");
  g.AddEdge("rlc_retx", "fwd_delay_up");
  g.AddEdge("rrc_change", "fwd_delay_up");

  g.AddEdge("poor_channel@rev", "tbs_drop@rev");
  g.AddEdge("cross_traffic@rev", "tbs_drop@rev");
  g.AddEdge("tbs_drop@rev", "rate_gap@rev");
  g.AddEdge("rate_gap@rev", "rev_delay_up");
  g.AddEdge("ul_scheduling@rev", "rev_delay_up");
  g.AddEdge("harq_retx@rev", "rev_delay_up");
  g.AddEdge("rlc_retx@rev", "rev_delay_up");
  g.AddEdge("rrc_change@rev", "rev_delay_up");

  // Forward delay hits playback and both GCC controllers; reverse delay
  // only starves feedback, reaching the pushback controller (Fig. 22).
  g.AddEdge("fwd_delay_up", "jitter_buffer_drain");
  g.AddEdge("fwd_delay_up", "gcc_overuse");
  g.AddEdge("gcc_overuse", "target_bitrate_drop");
  g.AddEdge("fwd_delay_up", "outstanding_up");
  g.AddEdge("rev_delay_up", "outstanding_up");
  g.AddEdge("outstanding_up", "cwnd_full");
  g.AddEdge("cwnd_full", "pushback_drop");

  g.Validate();
  return g;
}

std::string FormatChain(const CausalGraph& graph, const ChainPath& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += graph.node(path[i]).name;
  }
  return out;
}

}  // namespace domino::analysis
