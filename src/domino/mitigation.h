// Mitigation advisor — from diagnosis to action.
//
// The paper positions Domino as the tool that lets operators and
// application developers "understand and address performance issues" (§8).
// This module implements the *address* half: it maps an analysis run's
// diagnosed root causes to concrete, parameterised countermeasures, split by
// who can act on them (the application endpoint vs. the network operator).
//
// The recommendations mirror the paper's own discussion:
//   poor channel    -> cap resolution / prefer robust MCS (operator: OLLA)
//   cross traffic   -> bound the target bitrate below the contended share;
//                      operator: scheduler weight / slicing for RTC flows
//   UL scheduling   -> operator: proactive grants (Fig. 16 quantifies both
//                      the first-packet win and the grant waste)
//   HARQ retx       -> operator: more conservative MCS offset (rate floor)
//   RLC retx        -> operator: raise the HARQ retx limit / shorten the
//                      RLC status-report timer
//   RRC transitions -> app: hold the GCC estimate across sub-second stalls;
//                      operator: lengthen inactivity timers
//   reverse-path    -> app: higher feedback frequency / larger cwnd
//   (pushback)         queueing allowance
#pragma once

#include <string>
#include <vector>

#include "domino/statistics.h"

namespace domino::analysis {

enum class Actor { kApplication, kOperator };

struct Mitigation {
  std::string cause;        ///< Diagnosed root cause (graph base name).
  Actor actor;
  std::string action;       ///< Short imperative, machine-usable key.
  std::string rationale;    ///< Why this addresses the cause.
  double severity = 0;      ///< Share of degraded windows this cause won.
};

/// Derives ranked mitigations from an analysis run: causes that win more
/// per-window diagnoses (see ranking.h) come first. Causes that never win
/// a window are omitted.
std::vector<Mitigation> AdviseMitigations(const AnalysisResult& result,
                                          const Detector& detector);

/// Renders the advice as a text block for reports/CLI.
std::string FormatMitigations(const std::vector<Mitigation>& mitigations);

}  // namespace domino::analysis
