// Long-lived `domino serve` daemon — watch discovery, drain manifests,
// liveness reporting.
//
// The batch fleet (fleet.h) runs a fixed spec list to completion. An
// operator box, though, runs `domino serve --watch` for days: capture
// sessions appear while the fleet is running, the process is restarted on
// deploys, and the box occasionally runs out of disk mid-write. This
// module adds the daemon lifecycle around the FleetSupervisor:
//
//  * Runtime discovery. Serve roots are re-scanned on an interval; a
//    subdirectory is admitted the moment it becomes *ready* — its
//    meta.csv parses (the same readiness rule live mode's AwaitMeta
//    uses), so a capture directory that is still being rsync'd in is
//    left alone until its session row lands. Admission goes through the
//    normal AddSessions budget path; no fleet restart.
//
//  * Crash-only restart. SIGTERM starts a graceful drain: in-flight
//    attempts checkpoint and stop, everything still open is suspended,
//    and a *fleet manifest* — the checksummed session ledger defined
//    here — is written next to the state dirs. A restarted daemon seeds
//    its supervisor from the manifest: terminal sessions are reported
//    verbatim, suspended ones resume from their checkpoints with their
//    attempt counters intact, and the final report comes out
//    byte-identical to an undisturbed run's. The drain is an
//    optimisation, not a correctness requirement: a SIGKILLed daemon
//    re-runs open sessions from their last periodic checkpoints instead.
//
//  * Environmental fault tolerance. Checkpoint and report writes are
//    guarded by the deterministic disk-fault injector (diskfault.h);
//    an injected — or real — ENOSPC/EIO write failure fails the one
//    *attempt*, which the supervisor retries and eventually quarantines.
//    The daemon itself never exits on a session's write failure, and its
//    own manifest/status writes degrade to warnings.
//
//  * Liveness. fleet_status.json is refreshed on an interval: daemon
//    state, session counts, failed-attempt totals, and the age of the
//    newest open-session checkpoint — enough for an external monitor to
//    tell "draining" from "wedged".
//
// DESIGN.md §14 documents the lifecycle state machine and the manifest
// format in full.
#pragma once

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "domino/graph.h"
#include "domino/runtime/fleet.h"

namespace domino::runtime {

/// One session's line in the fleet manifest: where it lives plus the
/// supervision state a restarted daemon seeds from.
struct ManifestEntry {
  SessionSpec spec;  ///< dataset/state/tenant, state_dir always resolved.
  SessionSeed seed;  ///< Terminal outcome, or the open attempt counter.
};

/// The drain ledger `domino serve` writes at shutdown and seeds from at
/// startup. The config fields are the determinism-relevant knobs: a
/// manifest written under one admission-budget configuration must not be
/// resumed under another (the backlog shares — and therefore shedding —
/// would differ from the undisturbed run the resume is promising to
/// reproduce).
struct FleetManifest {
  int workers = 0;
  int max_attempts = 0;
  long global_backlog_windows = 0;
  IsolationMode isolate = IsolationMode::kThread;
  /// Sharded fleets: the box id that wrote this manifest ("" = unsharded).
  /// Not config — two boxes' manifests over one state root merge in
  /// `domino fleet-status`, and a resume only needs the same box id.
  std::string owner;
  std::vector<ManifestEntry> sessions;  ///< Admission order.
};

/// Serialises the manifest in the checksummed line-oriented format shared
/// with checkpoints (torn writes fail the checksum, unknown keys fail the
/// parse).
std::string FormatFleetManifest(const FleetManifest& m);

/// Parses and verifies a manifest document. On failure returns false with
/// a diagnostic in `*error`.
bool ParseFleetManifest(const std::string& text, FleetManifest* out,
                        std::string* error);

/// Atomic (temp + rename), fsync'd, fault-injectable manifest write.
bool SaveFleetManifest(const FleetManifest& m, const std::string& path,
                       DiskFaultInjector* fault = nullptr,
                       std::string* error = nullptr);

/// Loads `path`. Returns false with an *empty* error when the file does
/// not exist (fresh start) and with a diagnostic when it exists but does
/// not parse (the caller should refuse to guess).
bool LoadFleetManifest(const std::string& path, FleetManifest* out,
                       std::string* error);

/// Builds the shutdown manifest from a finished (possibly drained) run:
/// ok -> done, quarantined -> quar, suspended -> open with the preserved
/// attempt counter. `specs` is the full admission-ordered spec list,
/// parallel to `report.outcomes`.
FleetManifest BuildFleetManifest(const FleetReport& report,
                                 const std::vector<SessionSpec>& specs);

/// Live-mode readiness, lifted to discovery: a directory is a session the
/// daemon may admit once its meta.csv parses (same PollMeta rule AwaitMeta
/// polls on). A directory still being copied in fails this until the
/// session row lands.
bool SessionDirReady(const std::string& dir);

/// One discovery sweep: the immediate subdirectories of each root that
/// are ready, not yet in `known`, and not under `skip_prefix` (the state
/// root lives inside a watch root in common layouts). Sorted by path, so
/// admission order within a sweep is deterministic.
std::vector<std::string> ScanForSessions(
    const std::vector<std::string>& roots,
    const std::set<std::string>& known, const std::string& skip_prefix);

/// Stable state directory for a runtime-discovered session:
/// <state_root>/<sanitised-basename>_<path-hash>. A restarted daemon maps
/// the same dataset to the same state dir whatever the admission order.
std::string SessionStateDirFor(const std::string& state_root,
                               const std::string& dataset_dir);

/// SIGHUP-reloadable knobs. Zero (or negative) fields mean "keep the
/// current value" — an absent key never resets anything.
struct DaemonTunables {
  int max_attempts = 0;
  long backoff_ms = 0;
  long backoff_cap_ms = 0;
  double session_deadline_s = 0;
  long scan_interval_ms = 0;
  long status_interval_ms = 0;
  long drain_grace_ms = 0;
};

/// Parses a `key value` / '#'-comment tunables file. Unknown keys and
/// malformed values fail the whole reload (half-applied tunables are
/// worse than stale ones).
bool ParseTunablesFile(const std::string& path, DaemonTunables* out,
                       std::string* error);

struct ServeDaemonOptions {
  bool watch = false;          ///< Re-scan roots for new session dirs.
  bool exit_when_idle = false;  ///< Watch mode: exit once all known
                                ///< sessions are terminal and a sweep
                                ///< found nothing new (tests/CI).
  long scan_interval_ms = 500;
  long status_interval_ms = 1'000;
  long drain_grace_ms = 5'000;  ///< SIGTERM -> escalation grace.
  /// Root for runtime-discovered sessions' state dirs ("" = each
  /// dataset's own live_state). Also the default skip prefix for scans.
  std::string state_root;
  std::string manifest_path;  ///< "" = no manifest (no resume).
  std::string status_path;    ///< "" = no liveness file.
  std::string tunables_path;  ///< "" = SIGHUP only rescans the roots.
  /// Sharded fleet (shard.h): this box's id. Non-empty = sessions are
  /// claimed through per-session leases under <state_root>/shard before
  /// they are admitted, heartbeats are renewed while they run, and
  /// sessions claimed by a live box elsewhere are skipped (and re-tried
  /// each sweep, so a crashed box's work is taken over once its
  /// heartbeat goes stale). Requires state_root.
  std::string owner;
  long lease_ttl_ms = 15'000;  ///< Heartbeat staler than this = dead box.
  long heartbeat_ms = 0;       ///< Renew cadence; 0 = lease_ttl_ms / 4.
  std::vector<std::string> watch_roots;
  /// Signal mailboxes, incremented by the CLI's handlers. A second
  /// SIGTERM escalates the drain immediately (skip the grace period).
  std::atomic<int>* term_signals = nullptr;
  std::atomic<int>* hup_signals = nullptr;
};

struct ServeDaemonResult {
  FleetReport report;   ///< report.drained = the run ended in a drain.
  bool resumed = false;  ///< Seeded from an existing manifest.
  bool fatal = false;    ///< Nothing ran; `error` says why.
  std::string error;
};

/// Runs the serve lifecycle: manifest seeding, the supervisor itself, the
/// watch/status/signal loop, and the shutdown manifest. `specs` are the
/// CLI operands (state dirs may be empty = default); watch-discovered
/// sessions are appended behind them in discovery order.
ServeDaemonResult RunServeDaemon(std::vector<SessionSpec> specs,
                                 analysis::CausalGraph graph,
                                 LiveOptions live, FleetOptions fleet,
                                 const ServeDaemonOptions& dopts);

}  // namespace domino::runtime
