// Cross-box sharding for the serve fleet — lease-based work claiming over
// a shared filesystem.
//
// N `domino serve` daemons on N boxes point at one --state-root on a
// shared filesystem and run ONE fleet. There is no coordinator process and
// no network protocol: the only shared medium is the filesystem, and the
// only primitives assumed of it are atomic rename/link/mkdir (lease.h).
// Each box is identified by an --owner id; each session maps to a lease
// directory
//
//   <state_root>/shard/<session-key>/        (lease.h layout)
//   <state_root>/shard/<session-key>/done    terminal record (this file)
//
// where <session-key> is the basename of SessionStateDirFor() — the same
// stable dataset->state mapping the daemon already uses, so the box that
// takes over a crashed box's session finds the victim's checkpoint at the
// shared state dir automatically and resumes byte-identically.
//
// The ShardCoordinator is one box's view of the pool:
//
//  * TryClaim: check the done marker (work already finished anywhere ->
//    kDone), then take the lease — fresh, or stolen from an owner whose
//    heartbeat is staler than the TTL. Claimed-elsewhere sessions are
//    simply not admitted on this box (kHeldElsewhere — skipped, not shed).
//  * RenewHeld: heartbeat every held lease; a lease that comes back stolen
//    is reported so the daemon can fence the running attempt.
//  * MarkDone: publish the durable terminal record (fence-checked), THEN
//    release the lease. The order matters: a SIGKILL between the two
//    leaves a done marker behind, and a done marker always wins over a
//    stale lease, so the session is never re-run.
//  * SafeToGc: checkpoint GC must hold a current lease — a takeover box
//    can never race GC on the shared state root.
//
// The merged fleet view (`domino fleet-status <state-root>`) aggregates
// every box's manifest plus the done markers. Its default JSON is
// deliberately owner- and attempt-free: those are per-box bookkeeping that
// a takeover legitimately changes (the survivor re-runs a stolen session
// as its own attempt 1), while dataset/status/windows/chains are
// resume-invariant — so the merged view of a crashed-and-taken-over fleet
// is byte-identical to an undisturbed single-box run's.
//
// DESIGN.md §15 documents the lease lifecycle state machine and the
// fencing rules in full.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/lease.h"
#include "domino/runtime/supervisor.h"

namespace domino::runtime {

struct ShardOptions {
  std::string state_root;  ///< The shared filesystem root.
  std::string owner;       ///< This box's id (e.g. its hostname).
  long lease_ttl_ms = 15'000;  ///< Heartbeat staler than this = dead box.
  long heartbeat_ms = 0;       ///< Renew cadence; 0 = lease_ttl_ms / 4.
  /// Unix-ms wall clock, injectable for tests. Wall time never reaches any
  /// byte-compared output; it only drives staleness.
  std::function<std::int64_t()> clock;
};

/// Outcome of one claim attempt.
enum class ClaimResult {
  kClaimed,        ///< This box owns the session now.
  kHeldElsewhere,  ///< A live owner has it — skip, don't shed.
  kDone,           ///< A done marker exists — finished somewhere already.
  kError,          ///< Filesystem trouble; retry next sweep.
};

/// The durable terminal record for one session, written under the lease
/// directory before the lease is released. Status uses the manifest codes:
/// 1 = completed, 2 = quarantined (fenced sessions never write one — the
/// new owner's record is the truth).
struct ShardDoneRecord {
  std::string dataset_dir;
  std::string owner;
  std::uint64_t token = 0;
  int status = 0;
  int attempts = 0;
  long windows = 0;
  long chains = 0;
};

std::string FormatShardDone(const ShardDoneRecord& rec);
bool ParseShardDone(const std::string& text, ShardDoneRecord* out,
                    std::string* error);

class ShardCoordinator {
 public:
  /// Throws std::invalid_argument on an empty state_root/owner or a
  /// non-positive TTL.
  explicit ShardCoordinator(ShardOptions opts);

  /// The lease directory for a dataset (see header comment).
  [[nodiscard]] std::string LeaseDirFor(const std::string& dataset_dir) const;

  ClaimResult TryClaim(const std::string& dataset_dir, std::string* error);

  /// Heartbeats every held lease; returns the datasets whose lease turned
  /// out stolen (their ownership is already forgotten — the caller must
  /// treat the running attempt as fenced).
  std::vector<std::string> RenewHeld();

  /// Fence-checked terminal publish: writes the done marker (fsync'd,
  /// atomic) and releases the lease, in that order. Returns false — and
  /// touches nothing — when the lease is no longer ours.
  bool MarkDone(const std::string& dataset_dir, const ShardDoneRecord& rec,
                std::string* error);

  /// Releases a still-held lease without a done marker (drain path: the
  /// session is suspended, another box may claim and finish it).
  void Release(const std::string& dataset_dir);
  void ReleaseAll();

  /// Forgets a lease known to be lost, touching nothing on disk.
  void Forget(const std::string& dataset_dir);

  [[nodiscard]] bool Held(const std::string& dataset_dir);
  /// Fencing token of a held lease (0 if not held).
  [[nodiscard]] std::uint64_t TokenFor(const std::string& dataset_dir);
  /// True iff we hold the lease AND its on-disk token is still ours —
  /// the precondition for deleting anything under the shared state root.
  [[nodiscard]] bool SafeToGc(const std::string& dataset_dir);

  [[nodiscard]] long held_count();
  [[nodiscard]] const ShardOptions& options() const { return opts_; }
  [[nodiscard]] long effective_heartbeat_ms() const {
    return opts_.heartbeat_ms > 0 ? opts_.heartbeat_ms
                                  : opts_.lease_ttl_ms / 4;
  }

 private:
  ShardOptions opts_;
  std::mutex mu_;
  std::map<std::string, LeaseFile> leases_;  ///< dataset_dir -> lease.
};

// ---------------------------------------------------------------------------
// Merged fleet view
// ---------------------------------------------------------------------------

/// One session in the merged cross-box view. Status: 0 open, 1 done,
/// 2 quarantined, 3 fenced (per-box manifests only; the merged status of a
/// session some box finished is never fenced).
struct FleetStatusSession {
  std::string dataset_dir;
  std::string owner;
  int status = 0;
  long windows = 0;
  long chains = 0;
};

struct FleetStatusView {
  std::vector<FleetStatusSession> sessions;  ///< Sorted by dataset_dir.
};

/// Scans `<state_root>` for every box's `fleet*.manifest` plus the shard
/// done markers and merges them: done markers win over manifest entries
/// (they survive a SIGKILLed box whose manifest was never written),
/// terminal manifest entries win over open ones, ties resolve
/// deterministically. Returns false only on an unreadable state root;
/// individually corrupt manifests are skipped (a crashed box must not
/// block the fleet view).
bool CollectFleetStatus(const std::string& state_root, FleetStatusView* out,
                        std::string* error);

/// Deterministic merged JSON. The default omits owners and attempt counts
/// (see header comment — they legitimately differ after a takeover);
/// `with_owners` adds per-session owner attribution and a per-owner count
/// map for humans, at the cost of the byte-identity guarantee.
std::string BuildFleetStatusJson(const FleetStatusView& view,
                                 bool with_owners);

}  // namespace domino::runtime
