// Stalled-stream watchdog for the live runtime.
//
// All deadlines are in *trace time*, not wall-clock: a stream is stalled
// when its ingest watermark lags the furthest-ahead expected stream by more
// than the deadline. That keeps the verdict deterministic (a pure function
// of file content and poll index) — the property every kill-and-resume test
// relies on — while still mapping to wall-clock lag in a real deployment,
// where trace time and wall time advance together.
//
// A stalled stream is *excluded* from the safe-ingest frontier instead of
// blocking it: analysis keeps moving for the streams that are alive, and
// the sanitizer's coverage accounting sees the stalled stream's tail gap,
// degrading chain confidence instead of stalling the pipeline
// (head-of-line-blocking avoidance). Recovery is symmetric: once the
// watermark catches back up within the deadline the stream rejoins the
// frontier and a recovery event is tallied.
#pragma once

#include <array>

#include "common/time.h"
#include "domino/runtime/checkpoint.h"
#include "telemetry/dataset.h"

namespace domino::runtime {

class StreamWatchdog {
 public:
  StreamWatchdog(Duration stall_deadline,
                 std::array<bool, telemetry::kStreamCount> expected)
      : deadline_(stall_deadline), expected_(expected) {}

  /// Re-evaluates stall state from the current per-stream ingest
  /// watermarks (Time{0} = nothing ingested yet) and returns the safe
  /// frontier: the minimum watermark over healthy expected streams. When
  /// every expected stream is stalled the global maximum is returned so
  /// progress never deadlocks. Streams that have not produced a single
  /// record yet only count as stalled once the frontier has moved past the
  /// deadline (grace period for late-starting streams).
  Time Update(const std::array<Time, telemetry::kStreamCount>& watermarks);

  [[nodiscard]] bool expected(telemetry::StreamId id) const {
    return expected_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] bool stalled(telemetry::StreamId id) const {
    return state_[static_cast<std::size_t>(id)].stalled;
  }
  [[nodiscard]] long stall_events(telemetry::StreamId id) const {
    return state_[static_cast<std::size_t>(id)].stall_events;
  }
  [[nodiscard]] Duration deadline() const { return deadline_; }
  [[nodiscard]] bool any_stalled() const;

  /// Checkpoint plumbing.
  [[nodiscard]] const std::array<StallState, telemetry::kStreamCount>&
  Snapshot() const {
    return state_;
  }
  void Restore(const std::array<StallState, telemetry::kStreamCount>& s) {
    state_ = s;
  }

 private:
  Duration deadline_;
  std::array<bool, telemetry::kStreamCount> expected_{};
  std::array<StallState, telemetry::kStreamCount> state_{};
};

}  // namespace domino::runtime
