#include "domino/runtime/live.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/lease.h"
#include "domino/ranking.h"
#include "domino/report.h"

namespace domino::runtime {

namespace fs = std::filesystem;
using telemetry::StreamId;
using telemetry::kStreamCount;

namespace {

constexpr const char* kCheckpointFile = "live.ckpt";
constexpr const char* kChainsFile = "chains.jsonl";
constexpr const char* kReportFile = "live_report.json";

std::array<StreamId, kStreamCount> AllStreams() {
  return {StreamId::kDci, StreamId::kGnbLog, StreamId::kPackets,
          StreamId::kStatsUe, StreamId::kStatsRemote};
}

}  // namespace

void LiveRanking::OnWindow(const analysis::WindowResult& w,
                           const analysis::Detector& detector) {
  const analysis::CausalGraph& graph = detector.graph();
  ++windows_seen;
  for (std::size_t n = 0; n < graph.node_count(); ++n) {
    bool active = false;
    for (std::size_t p = 0; p < 2; ++p) {
      if (n < w.node_active[p].size()) active |= w.node_active[p][n];
    }
    if (active) ++cause[static_cast<int>(n)].first;
  }
  if (w.chains.empty()) return;
  ++windows_with_chain;

  // Anytime variant of RankRootCauses: same score formula, cause base
  // rates over the windows seen *so far* (including this one).
  const double total = std::max(1.0, static_cast<double>(windows_seen));
  const double min_cov = detector.config().min_coverage;
  double best_score = 0;
  bool best_insufficient = true;
  int best_cause = -1;
  bool have_best = false;
  for (const analysis::ChainInstance& ci : w.chains) {
    const analysis::ChainPath& path =
        detector.chains()[static_cast<std::size_t>(ci.chain_index)];
    auto& tally = chain_tally[ci.chain_index];
    ++tally.first;
    if (ci.confidence < min_cov) ++tally.second;

    const int cause_node = path.front();
    const double rate =
        static_cast<double>(cause[cause_node].first) / total;
    const double score = (-std::log(std::max(rate, 1e-6)) +
                          1e-3 * static_cast<double>(path.size())) *
                         ci.confidence;
    const bool insufficient = ci.confidence < min_cov;
    // Insufficient chains rank after sufficient ones whatever the score;
    // first-seen wins exact ties (deterministic, order of w.chains).
    const bool better =
        !have_best || (insufficient != best_insufficient
                           ? best_insufficient
                           : score > best_score);
    if (better) {
      have_best = true;
      best_score = score;
      best_insufficient = insufficient;
      best_cause = cause_node;
    }
  }
  if (best_insufficient) {
    ++insufficient_windows;
  } else {
    ++cause[best_cause].second;
  }
}

std::string DefaultStateDir(const std::string& dataset_dir) {
  return dataset_dir + "/live_state";
}

LiveRunner::LiveRunner(std::string dataset_dir, std::string state_dir,
                       analysis::CausalGraph graph, LiveOptions opts)
    : dataset_dir_(std::move(dataset_dir)),
      state_dir_(std::move(state_dir)),
      opts_(std::move(opts)),
      reader_(dataset_dir_),
      streaming_(std::move(graph), opts_.detector) {
  // Normalise options that other invariants rest on.
  const Duration step = opts_.detector.step;
  if (opts_.chunk < step) opts_.chunk = step;
  if (step * (opts_.chunk / step) != opts_.chunk) {
    throw std::runtime_error("live: chunk must be a multiple of step");
  }
  const Duration min_horizon =
      opts_.detector.window + opts_.sanitize.reorder_window + opts_.chunk;
  if (opts_.horizon < min_horizon) opts_.horizon = min_horizon;

  // Everything that can change the byte content of chains.jsonl or
  // live_report.json goes into the fingerprint; a resume under a different
  // fingerprint is refused instead of silently mixing two schedules.
  const analysis::Detector& det = streaming_.detector();
  std::ostringstream fp;
  fp << "v1 w=" << opts_.detector.window.micros()
     << " s=" << opts_.detector.step.micros()
     << " inc=" << (opts_.detector.incremental ? 1 : 0)
     << " cov=" << opts_.detector.min_coverage
     << " nodes=" << det.graph().node_count()
     << " chains=" << det.chains().size()
     << " chunk=" << opts_.chunk.micros()
     << " hor=" << opts_.horizon.micros()
     << " stall=" << opts_.stall_deadline.micros()
     << " guard=" << opts_.reorder_guard.micros()
     << " jump=" << opts_.max_watermark_jump.micros()
     << " backlog=" << opts_.max_backlog_windows
     << " ckpt=" << opts_.checkpoint_every_windows
     << " ro=" << opts_.sanitize.reorder_window.micros()
     << " gap=" << opts_.sanitize.gap_threshold.micros()
     << " slack=" << opts_.sanitize.range_slack.micros();
  fingerprint_ = fp.str();
  // Disk chaos is per-attempt state, like the crash/fail/wedge hooks: the
  // injector counts this attempt's guarded writes from zero.
  diskfault_ = DiskFaultInjector(opts_.disk_fault);
}

LiveSummary LiveRunner::Run() {
  // Fence before touching any state: both resume and fresh-start truncate
  // the chain log below, and a zombie attempt carrying a stolen token must
  // not truncate the new owner's output.
  CheckFence();
  fs::create_directories(state_dir_);
  const std::string ckpt_path = state_dir_ + "/" + kCheckpointFile;
  const std::string chains_path = state_dir_ + "/" + kChainsFile;

  LiveCheckpoint cp;
  std::string error;
  CheckpointFailure failure = CheckpointFailure::kNone;
  if (LoadCheckpoint(ckpt_path, fingerprint_, &cp, &error, &failure,
                     opts_.input)) {
    // Resume: restore every accumulator, then truncate the chain log to
    // the checkpointed byte offset — chains past it were emitted after the
    // checkpoint and will be re-emitted deterministically.
    streaming_.Restore(cp.next_begin, cp.windows, cp.chains,
                       cp.insufficient, cp.resets);
    anchor_ = cp.anchor;
    cut_ = cp.retention_cut;
    limit_ = cp.ingest_limit;
    poll_count_ = cp.poll_count;
    checkpoints_written_ = cp.checkpoints_written;
    // A drain checkpoint carries progress past the cadence origin; restore
    // the origin itself so periodic checkpoints land exactly where an
    // undisturbed run would put them (pre-cadence files fall back to the
    // old behaviour: the checkpoint was the origin).
    last_checkpoint_windows_ = cp.last_checkpoint_windows >= 0
                                   ? cp.last_checkpoint_windows
                                   : cp.windows;
    last_resets_ = cp.resets;
    analyzed_to_ = cp.next_begin;
    retention_.cuts = cp.retention_cuts;
    retention_.evicted_records =
        static_cast<std::size_t>(cp.evicted_records);
    retention_.peak_retained_records =
        static_cast<std::size_t>(cp.peak_retained_records);
    retention_.peak_retained_span = cp.peak_retained_span;
    ranking_.windows_seen = cp.windows_seen;
    ranking_.windows_with_chain = cp.windows_with_chain;
    ranking_.insufficient_windows = cp.insufficient_windows;
    ranking_.cause = cp.cause;
    ranking_.chain_tally = cp.chain_tally;
    shed_ = cp.shed;
    restored_stalls_ = cp.stalls;
    restored_tails_ = cp.tails;
    have_restored_stalls_ = true;
    resumed_ = true;

    std::error_code ec;
    auto size = fs::file_size(chains_path, ec);
    if (ec && cp.chainlog_bytes > 0) {
      throw std::runtime_error("live: checkpoint expects " +
                               std::to_string(cp.chainlog_bytes) +
                               " bytes of " + chains_path +
                               " but the file is unreadable");
    }
    if (!ec) {
      if (size < cp.chainlog_bytes) {
        throw std::runtime_error(
            "live: chain log shorter than its checkpoint (" + chains_path +
            " was tampered with or lost data)");
      }
      fs::resize_file(chains_path, cp.chainlog_bytes);
    }
    chainlog_bytes_ = cp.chainlog_bytes;
  } else if (failure == CheckpointFailure::kFingerprintMismatch) {
    // The checkpoint is *valid* but belongs to a different config/engine.
    // Resuming would mix incompatible analysis state and starting fresh
    // would silently discard a healthy run — the operator must decide.
    throw std::runtime_error(error + " (" + ckpt_path + ")");
  } else {
    if (failure == CheckpointFailure::kCorrupt) {
      // Torn, tampered, or oversized: the file carries no trustworthy
      // state, so the only safe continuation is a fresh start. Warn loudly
      // — data before the crash will be re-analysed, not lost.
      std::fprintf(stderr,
                   "live: warning: ignoring corrupt checkpoint %s (%s); "
                   "starting fresh\n",
                   ckpt_path.c_str(), error.c_str());
    }
    // Fresh start: a stale log from an earlier aborted run (no checkpoint
    // yet written) must not pollute this one.
    std::ofstream(chains_path, std::ios::trunc);
    chainlog_bytes_ = 0;
  }

  chain_log_.open(chains_path, std::ios::binary | std::ios::app);
  if (!chain_log_) {
    throw std::runtime_error("live: cannot open " + chains_path);
  }

  streaming_.on_chain = [this](const analysis::ChainInstance& ci,
                               const analysis::WindowResult&) {
    std::string line =
        analysis::FormatChainInstanceJson(ci, streaming_.detector()) + "\n";
    chain_log_ << line;
    chainlog_bytes_ += line.size();
  };
  streaming_.on_window = [this](const analysis::WindowResult& w) {
    ranking_.OnWindow(w, streaming_.detector());
  };

  if (!AwaitMeta()) {
    if (!drained_) {
      throw std::runtime_error("live: " + dataset_dir_ +
                               "/meta.csv never became readable");
    }
    // Drained before the session even became readable: nothing to
    // checkpoint, nothing analysed — the next run simply starts fresh.
  }

  while (!finished_ && !drained_) {
    if (!PollOnce()) break;
  }

  LiveSummary sum;
  sum.dataset_dir = dataset_dir_;
  sum.polls = poll_count_;
  sum.windows = streaming_.windows_processed();
  sum.chains = streaming_.chains_detected();
  sum.insufficient_chains = streaming_.insufficient_chains();
  sum.resets = streaming_.resets();
  sum.checkpoints = checkpoints_written_;
  for (const ShedRange& s : shed_) sum.shed_windows += s.windows;
  if (watchdog_.has_value()) {
    for (StreamId id : AllStreams()) {
      if (watchdog_->stalled(id)) ++sum.stalled_streams;
    }
  }
  sum.resumed = resumed_;
  sum.drained = drained_;
  sum.report_path = state_dir_ + "/" + kReportFile;
  sum.chains_path = chains_path;
  return sum;
}

bool LiveRunner::AwaitMeta() {
  for (int attempt = 0; attempt <= opts_.max_idle_polls; ++attempt) {
    if (reader_.PollMeta(ds_)) {
      // The declared session end from meta.csv — ds_.end is repurposed
      // below to track the retained-data extent, so grab it now.
      const Time declared_end = ds_.end;
      if (resumed_) {
        if (ds_.begin != anchor_) {
          throw std::runtime_error(
              "live: dataset begin changed since the checkpoint was "
              "written — refusing to resume against different data");
        }
        // Retention had already moved the dataset begin forward. Rebuild
        // the retained raw records by replaying every stream file to its
        // checkpointed byte cursor (tail.h documents why stop positions
        // are replayed, not re-derived).
        ds_.begin = cut_;
        Time data_end = cut_;
        for (StreamId id : AllStreams()) {
          const auto& cur =
              restored_tails_[static_cast<std::size_t>(id)];
          reader_.ReplayTo(id, ds_, cur, cut_, opts_.input);
          data_end = std::max(data_end, cur.watermark);
        }
        ds_.end = data_end;
      } else {
        anchor_ = ds_.begin;
        cut_ = ds_.begin;
        limit_ = ds_.begin;
        analyzed_to_ = ds_.begin;
      }
      meta_end_ = declared_end > anchor_ ? declared_end : Time{0};
      std::array<bool, kStreamCount> expected{};
      expected[static_cast<std::size_t>(StreamId::kDci)] = true;
      expected[static_cast<std::size_t>(StreamId::kGnbLog)] =
          ds_.is_private_cell;
      expected[static_cast<std::size_t>(StreamId::kPackets)] = true;
      expected[static_cast<std::size_t>(StreamId::kStatsUe)] = true;
      expected[static_cast<std::size_t>(StreamId::kStatsRemote)] = true;
      watchdog_.emplace(opts_.stall_deadline, expected);
      if (have_restored_stalls_) watchdog_->Restore(restored_stalls_);
      return true;
    }
    // Static datasets either have a meta.csv or never will — fail fast.
    // Only follow mode waits for a writer to produce one.
    if (!opts_.follow) return false;
    if (DrainRequested()) {
      drained_ = true;
      return false;
    }
    CheckCancel();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.poll_sleep_ms));
  }
  return false;
}

bool LiveRunner::DrainRequested() const {
  return opts_.drain != nullptr &&
         opts_.drain->load(std::memory_order_relaxed);
}

void LiveRunner::CheckCancel() const {
  if (opts_.cancel != nullptr &&
      opts_.cancel->load(std::memory_order_relaxed)) {
    throw std::runtime_error("live: cancelled (session deadline exceeded)");
  }
}

void LiveRunner::CheckFence() const {
  if (opts_.fence_lease_dir.empty()) return;
  if (!LeaseTokenCurrent(opts_.fence_lease_dir, opts_.fence_token)) {
    throw std::runtime_error(
        "fenced: session lease no longer carries token " +
        std::to_string(opts_.fence_token) +
        " (stolen by another box; stopping without touching state)");
  }
}

void LiveRunner::MaybeChaosWedge() {
  if (resumed_ || opts_.chaos_wedge_after <= 0 ||
      process_checkpoints_ < opts_.chaos_wedge_after) {
    return;
  }
  // Simulate a session that stops making progress without failing: a dead
  // live feed, a wedged filesystem. Only the supervisor's wall-clock
  // deadline (cancel token in thread isolation, SIGKILL in process
  // isolation) can get a worker back from here.
  for (;;) {
    CheckCancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool LiveRunner::PollOnce() {
  // Fence before the drain check: a zombie daemon draining after its lease
  // was stolen must not publish even a drain checkpoint over the new
  // owner's state.
  CheckFence();
  if (DrainRequested()) {
    // Graceful drain: persist progress at this poll boundary and stop
    // without finishing. The next run resumes here and produces output
    // byte-identical to a run that was never interrupted.
    WriteDrainCheckpoint();
    drained_ = true;
    return false;
  }
  CheckCancel();
  MaybeChaosWedge();
  ++poll_count_;
  limit_ = anchor_ + opts_.chunk * poll_count_;

  telemetry::TailLimits lim;
  lim.cut = cut_;
  lim.limit = limit_;
  lim.reorder_guard = opts_.reorder_guard;
  lim.max_jump = opts_.max_watermark_jump;
  lim.input = opts_.input;

  std::size_t rows = 0;
  bool all_eof = true;
  for (StreamId id : AllStreams()) {
    if (!watchdog_->expected(id)) continue;
    telemetry::TailProgress p = reader_.Poll(id, ds_, lim);
    rows += p.rows_ingested;
    // A stream is "drained" for termination purposes when we have consumed
    // its file to the end; stalled/missing streams are covered by the
    // watchdog exclusion below.
    if (!p.eof && !watchdog_->stalled(id)) all_eof = false;
  }

  std::array<Time, kStreamCount> watermarks{};
  Time data_end = cut_;
  for (StreamId id : AllStreams()) {
    watermarks[static_cast<std::size_t>(id)] = reader_.watermark(id);
    data_end = std::max(data_end, reader_.watermark(id));
  }
  // ds_.end tracks the retained data extent (not the declared session
  // end) so RetentionStats::peak_retained_span measures real memory.
  ds_.end = data_end;
  Time frontier = watchdog_->Update(watermarks);

  Time advance_to = std::min(limit_, frontier);
  if (meta_end_ > Time{0}) advance_to = std::min(advance_to, meta_end_);

  // Termination: the schedule has moved past the declared end and every
  // live stream is drained — analyse the remaining tail in full and stop.
  // The data must actually have gotten near the declared end, though: a
  // capture whose files all stop far short of meta's end is an interrupted
  // recording (it may grow later and be resumed), not a finished one, and
  // flushing windows past its watermark would bake half-empty analysis
  // into the log. "Near" is the stall deadline — the same tolerance that
  // separates a late stream from a dead one.
  const bool past_end = meta_end_ > Time{0} &&
                        limit_ >= meta_end_ + opts_.reorder_guard;
  const bool data_complete =
      data_end + opts_.stall_deadline >= meta_end_;
  const bool final_poll = past_end && all_eof && rows == 0 && data_complete;
  if (final_poll) advance_to = meta_end_;

  long windows_before = streaming_.windows_processed();
  if (advance_to > analyzed_to_ || final_poll) {
    AdvanceAnalysis(advance_to, final_poll);
    analyzed_to_ = std::max(analyzed_to_, advance_to);
  }
  long new_windows = streaming_.windows_processed() - windows_before;

  // Retention: evict raw records the analysis cursor has left behind.
  Time cut_candidate = telemetry::QuantizeRetentionCut(
      anchor_, streaming_.next_window_begin() - opts_.horizon);
  if (cut_candidate > cut_) {
    telemetry::ApplyRetention(ds_, cut_candidate, retention_);
    cut_ = cut_candidate;
  }
  telemetry::NoteRetained(ds_, retention_);

  chain_log_.flush();
  if (opts_.checkpoint_every_windows > 0 &&
      streaming_.windows_processed() - last_checkpoint_windows_ >=
          opts_.checkpoint_every_windows) {
    WriteCheckpoint();
  }
  Status(final_poll ? "final" : "poll");

  if (final_poll) {
    FinishRun();
    return false;
  }

  if (rows == 0 && new_windows == 0) {
    ++idle_polls_;
    if (!opts_.follow && idle_polls_ >= opts_.max_idle_polls) {
      // Nothing moving for a whole idle budget (no declared end, or a
      // poisoned directory that can never drain): conclude the capture is
      // over rather than spinning forever. Extra idle polls change no
      // reported quantity, so this stays resume-invariant.
      FinishRun();
      return false;
    }
    if (opts_.follow) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.poll_sleep_ms));
    }
  } else {
    idle_polls_ = 0;
  }
  return true;
}

void LiveRunner::AdvanceAnalysis(Time advance_to, bool final_poll) {
  if (advance_to <= cut_) return;
  // Rolling re-derivation: sanitize a copy of the retained raw records
  // with the session end pinned to the analysis frontier, so a stalled
  // stream's missing tail shows up as a coverage gap (-> reduced chain
  // confidence) rather than as silence.
  telemetry::SessionDataset copy = ds_;
  copy.end = advance_to;
  telemetry::SanitizeReport health =
      telemetry::SanitizeDataset(copy, opts_.sanitize);
  telemetry::DerivedTrace trace = telemetry::BuildDerivedTrace(copy);
  trace.quality = health.quality();

  ApplyBackpressure(advance_to);
  streaming_.Advance(trace, advance_to);
  (void)final_poll;

  // S1 guard: the live loop rebuilds its trace once per poll, so exactly
  // one incremental-cursor reset per Advance is expected. More means a
  // caller bug that silently re-pays cursor warm-up on every call.
  long resets = streaming_.resets();
  if (resets - last_resets_ > 1) {
    std::fprintf(stderr,
                 "live[%s]: warning: %ld incremental cursor resets in one "
                 "poll (expected at most 1) — trace identity is flapping\n",
                 dataset_dir_.c_str(), resets - last_resets_);
  }
  last_resets_ = resets;
}

void LiveRunner::ApplyBackpressure(Time advance_to) {
  if (opts_.max_backlog_windows <= 0) return;
  const Duration step = opts_.detector.step;
  const Duration window = opts_.detector.window;
  const Time nb = streaming_.next_window_begin();
  if (nb + window > advance_to) return;
  const long pending = (advance_to - window - nb) / step + 1;
  if (pending <= opts_.max_backlog_windows) return;

  const Time target = nb + step * (pending - opts_.max_backlog_windows);
  const int skipped = streaming_.SkipTo(target);
  if (skipped <= 0) return;
  if (!shed_.empty() && shed_.back().end == nb) {
    shed_.back().end = target;
    shed_.back().windows += skipped;
  } else {
    shed_.push_back(ShedRange{nb, target, skipped});
  }
  if (!opts_.quiet) {
    std::fprintf(stderr,
                 "live[%s]: backpressure: shed %d windows [%.1fs, %.1fs)\n",
                 dataset_dir_.c_str(), skipped, nb.seconds(),
                 target.seconds());
  }
}

LiveCheckpoint LiveRunner::BuildCheckpoint() const {
  LiveCheckpoint cp;
  cp.fingerprint = fingerprint_;
  cp.next_begin = streaming_.next_window_begin();
  cp.ingest_limit = limit_;
  cp.retention_cut = cut_;
  cp.anchor = anchor_;
  cp.poll_count = poll_count_;
  cp.windows = streaming_.windows_processed();
  cp.chains = streaming_.chains_detected();
  cp.insufficient = streaming_.insufficient_chains();
  cp.resets = streaming_.resets();
  cp.chainlog_bytes = chainlog_bytes_;
  cp.retention_cuts = retention_.cuts;
  cp.evicted_records = retention_.evicted_records;
  cp.peak_retained_records = retention_.peak_retained_records;
  cp.peak_retained_span = retention_.peak_retained_span;
  cp.windows_seen = ranking_.windows_seen;
  cp.windows_with_chain = ranking_.windows_with_chain;
  cp.insufficient_windows = ranking_.insufficient_windows;
  cp.cause = ranking_.cause;
  cp.chain_tally = ranking_.chain_tally;
  cp.shed = shed_;
  if (watchdog_.has_value()) cp.stalls = watchdog_->Snapshot();
  for (StreamId id : AllStreams()) {
    cp.tails[static_cast<std::size_t>(id)] = reader_.cursor(id);
  }
  return cp;
}

void LiveRunner::WriteDrainCheckpoint() {
  chain_log_.flush();
  LiveCheckpoint cp = BuildCheckpoint();
  // Progress is saved, but no cadence slot is consumed: the resumed run
  // must count and place its periodic checkpoints exactly like a run that
  // was never drained, or the final report stops being byte-identical.
  cp.checkpoints_written = checkpoints_written_;
  cp.last_checkpoint_windows = last_checkpoint_windows_;
  const std::string path = state_dir_ + "/" + kCheckpointFile;
  // Best-effort, never injected (drain is not an attempt making progress):
  // if the disk is failing, the previous periodic checkpoint still resumes
  // correctly, just replaying more.
  if (!SaveCheckpoint(cp, path)) {
    std::fprintf(stderr,
                 "live[%s]: warning: failed to write drain checkpoint %s; "
                 "resume will replay from the previous checkpoint\n",
                 dataset_dir_.c_str(), path.c_str());
  }
}

void LiveRunner::WriteCheckpoint() {
  // Prove ownership immediately before the durable write: a fenced zombie
  // must fail here, not overwrite the new owner's checkpoint.
  CheckFence();
  chain_log_.flush();
  LiveCheckpoint cp = BuildCheckpoint();
  cp.checkpoints_written = checkpoints_written_ + 1;
  cp.last_checkpoint_windows = streaming_.windows_processed();

  const std::string path = state_dir_ + "/" + kCheckpointFile;
  const long faults_before = diskfault_.faults_injected();
  // Disk chaos follows the fresh-run-only convention of the other chaos
  // hooks: a retried attempt resumes from the previous checkpoint and
  // writes clean, which is what makes the fault recoverable.
  if (!SaveCheckpoint(cp, path, resumed_ ? nullptr : &diskfault_)) {
    // A session that cannot persist its progress must not keep running as
    // if it had: escalate to an attempt failure so the fleet supervisor
    // takes the retry/backoff/quarantine path (the previous checkpoint is
    // intact, so the retry resumes and replays only the uncheckpointed
    // tail). A standalone `domino live` run exits nonzero for the same
    // reason — silent non-durability is worse than a loud failure.
    if (diskfault_.faults_injected() > faults_before) {
      throw std::runtime_error("live: checkpoint write failed (injected " +
                               diskfault_.last_fault_name() + " at write " +
                               std::to_string(diskfault_.writes_seen()) +
                               ")");
    }
    throw std::runtime_error("live: checkpoint write failed: " + path);
  }
  ++checkpoints_written_;
  ++process_checkpoints_;
  last_checkpoint_windows_ = streaming_.windows_processed();
  if (opts_.crash_after_checkpoints > 0 &&
      process_checkpoints_ >= opts_.crash_after_checkpoints) {
    // Chaos hook: die *exactly* at a checkpoint boundary, as SIGKILL
    // would, with no destructors and no flushes beyond what a real crash
    // guarantees.
    std::_Exit(137);
  }
  // Fleet chaos hooks: unlike crash_after_checkpoints they fire only on a
  // fresh (non-resumed) run, so the supervisor's retry — which resumes
  // from the checkpoint just written — runs clean. That makes these
  // faults *recoverable* by construction.
  if (!resumed_ && opts_.chaos_crash_after > 0 &&
      process_checkpoints_ >= opts_.chaos_crash_after) {
    std::_Exit(137);
  }
  if (!resumed_ && opts_.chaos_fail_after > 0 &&
      process_checkpoints_ >= opts_.chaos_fail_after) {
    throw std::runtime_error("live: chaos fault injected after checkpoint " +
                             std::to_string(process_checkpoints_));
  }
}

void LiveRunner::FinishRun() {
  CheckFence();
  finished_ = true;
  const Time end = meta_end_ > Time{0} ? meta_end_ : analyzed_to_;

  // Final health snapshot over the retained tail, for the report only.
  telemetry::SessionDataset copy = ds_;
  if (end > copy.begin) copy.end = end;
  telemetry::SanitizeReport health =
      telemetry::SanitizeDataset(copy, opts_.sanitize);

  const std::string report_path = state_dir_ + "/" + kReportFile;
  // The report is a guarded durability write like the checkpoint: atomic
  // (temp + rename, so readers never see a torn report), faultable under
  // disk chaos, and loud on failure — an attempt whose output cannot be
  // persisted has not completed.
  std::string werr;
  if (!AtomicWriteFile(report_path, BuildLiveReportJson(health),
                       /*fsync_file=*/false,
                       resumed_ ? nullptr : &diskfault_, &werr)) {
    throw std::runtime_error("live: report " + werr);
  }
  chain_log_.flush();
  WriteCheckpoint();
}

std::string LiveRunner::BuildLiveReportJson(
    const telemetry::SanitizeReport& final_health) const {
  using analysis::JsonEscape;
  using analysis::JsonNum;
  const analysis::Detector& det = streaming_.detector();
  const analysis::CausalGraph& graph = det.graph();
  const Time end = meta_end_ > Time{0} ? meta_end_ : analyzed_to_;

  // Only wall-clock-free, resume-invariant quantities belong here: this
  // file is byte-compared between killed-and-resumed and uninterrupted
  // runs. (Notably absent: resume counts, reset counts, wall timings.)
  std::ostringstream os;
  os << "{\n";
  os << "  \"trace\": {\"cell\": \"" << JsonEscape(ds_.cell_name)
     << "\", \"begin_s\": " << JsonNum(anchor_.seconds())
     << ", \"end_s\": " << JsonNum(end.seconds())
     << ", \"window_s\": " << JsonNum(opts_.detector.window.seconds())
     << ", \"step_s\": " << JsonNum(opts_.detector.step.seconds()) << "},\n";
  os << "  \"live\": {\"chunk_s\": " << JsonNum(opts_.chunk.seconds())
     << ", \"horizon_s\": " << JsonNum(opts_.horizon.seconds())
     << ", \"stall_deadline_s\": "
     << JsonNum(opts_.stall_deadline.seconds())
     << ", \"max_backlog_windows\": " << opts_.max_backlog_windows << "},\n";
  os << "  \"progress\": {\"windows\": " << streaming_.windows_processed()
     << ", \"chains\": " << streaming_.chains_detected()
     << ", \"insufficient_chains\": " << streaming_.insufficient_chains()
     << ", \"checkpoints\": " << checkpoints_written_ << "},\n";

  long shed_windows = 0;
  os << "  \"backpressure\": {\"shed_ranges\": [";
  for (std::size_t i = 0; i < shed_.size(); ++i) {
    const ShedRange& s = shed_[i];
    shed_windows += s.windows;
    os << (i == 0 ? "" : ", ") << "{\"begin_s\": " << JsonNum(s.begin.seconds())
       << ", \"end_s\": " << JsonNum(s.end.seconds())
       << ", \"windows\": " << s.windows << ", \"degraded\": true}";
  }
  os << "], \"shed_windows\": " << shed_windows << "},\n";

  os << "  \"retention\": {\"cuts\": " << retention_.cuts
     << ", \"evicted_records\": " << retention_.evicted_records
     << ", \"peak_retained_records\": " << retention_.peak_retained_records
     << ", \"peak_retained_span_s\": "
     << JsonNum(retention_.peak_retained_span.seconds()) << "},\n";

  os << "  \"watchdog\": {\"streams\": [";
  bool first = true;
  for (StreamId id : AllStreams()) {
    if (!first) os << ", ";
    first = false;
    const bool have = watchdog_.has_value();
    os << "{\"stream\": \"" << telemetry::StreamName(id) << "\""
       << ", \"expected\": "
       << ((have && watchdog_->expected(id)) ? "true" : "false")
       << ", \"stall_events\": " << (have ? watchdog_->stall_events(id) : 0)
       << ", \"stalled\": "
       << ((have && watchdog_->stalled(id)) ? "true" : "false") << "}";
  }
  os << "]},\n";

  os << "  \"health\": [";
  first = true;
  for (const telemetry::StreamHealth& s : final_health.streams) {
    if (!first) os << ", ";
    first = false;
    os << "{\"stream\": \"" << telemetry::StreamName(s.id) << "\""
       << ", \"expected\": " << (s.expected ? "true" : "false")
       << ", \"coverage\": " << JsonNum(s.coverage)
       << ", \"gap_count\": " << s.gap_count << "}";
  }
  os << "],\n";

  // Per-window root-cause winners (anytime ranking; see LiveRanking).
  std::vector<std::pair<std::string, long>> winners;
  for (const auto& [idx, v] : ranking_.cause) {
    if (v.second > 0) {
      winners.emplace_back(graph.node(idx).name, v.second);
    }
  }
  std::sort(winners.begin(), winners.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  os << "  \"root_causes\": [";
  for (std::size_t i = 0; i < winners.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n    {\"cause\": \""
       << JsonEscape(winners[i].first)
       << "\", \"windows\": " << winners[i].second << "}";
  }
  os << (winners.empty() ? "" : "\n  ") << "],\n";
  os << "  \"insufficient_windows\": " << ranking_.insufficient_windows
     << ",\n";

  std::vector<std::pair<int, std::pair<long, long>>> top(
      ranking_.chain_tally.begin(), ranking_.chain_tally.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second.first != b.second.first
               ? a.second.first > b.second.first
               : a.first < b.first;
  });
  if (top.size() > 8) top.resize(8);
  os << "  \"top_chains\": [";
  for (std::size_t i = 0; i < top.size(); ++i) {
    const auto& [idx, tally] = top[i];
    os << (i == 0 ? "" : ",") << "\n    {\"path\": \""
       << JsonEscape(analysis::FormatChain(
              graph, det.chains()[static_cast<std::size_t>(idx)]))
       << "\", \"count\": " << tally.first
       << ", \"insufficient\": " << tally.second << "}";
  }
  os << (top.empty() ? "" : "\n  ") << "],\n";
  os << "  \"ended\": true\n";
  os << "}\n";
  return os.str();
}

void LiveRunner::Status(const char* stage) const {
  if (opts_.quiet) return;
  std::fprintf(stderr,
               "live[%s]: %s %ld t=%.1fs windows=%ld chains=%ld "
               "(%ld insufficient) retained=%zu%s\n",
               dataset_dir_.c_str(), stage, poll_count_, limit_.seconds(),
               streaming_.windows_processed(), streaming_.chains_detected(),
               streaming_.insufficient_chains(),
               telemetry::CountRecords(ds_),
               (watchdog_.has_value() && watchdog_->any_stalled())
                   ? " [stalled stream]"
                   : "");
}

}  // namespace domino::runtime
