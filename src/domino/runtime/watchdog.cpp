#include "domino/runtime/watchdog.h"

#include <algorithm>

namespace domino::runtime {

Time StreamWatchdog::Update(
    const std::array<Time, telemetry::kStreamCount>& watermarks) {
  Time global_max{0};
  for (std::size_t i = 0; i < watermarks.size(); ++i) {
    if (expected_[i]) global_max = std::max(global_max, watermarks[i]);
  }
  for (std::size_t i = 0; i < watermarks.size(); ++i) {
    if (!expected_[i]) continue;
    StallState& st = state_[i];
    const bool lagging = global_max - watermarks[i] > deadline_;
    if (lagging && !st.stalled) {
      st.stalled = true;
      ++st.stall_events;
    } else if (!lagging && st.stalled) {
      st.stalled = false;
      ++st.recoveries;
    }
  }
  Time frontier = Time::max();
  bool any_healthy = false;
  for (std::size_t i = 0; i < watermarks.size(); ++i) {
    if (!expected_[i] || state_[i].stalled) continue;
    any_healthy = true;
    frontier = std::min(frontier, watermarks[i]);
  }
  return any_healthy ? frontier : global_max;
}

bool StreamWatchdog::any_stalled() const {
  for (const StallState& s : state_) {
    if (s.stalled) return true;
  }
  return false;
}

}  // namespace domino::runtime
