// Crash-safe checkpoint persistence for the live analysis runtime.
//
// A checkpoint is everything `domino live` needs to resume after a SIGKILL
// and keep producing byte-identical output: the analysis cursor, the
// aligned poll schedule, the retention cut, every monotone counter that
// feeds the final report, the streaming ranking accumulators, watchdog
// tallies, and the chains.jsonl byte offset the log must be truncated to
// (chains past the offset were emitted after the checkpoint and will be
// re-emitted deterministically).
//
// Durability protocol: serialise to `<path><AtomicTempSuffix()>` (a
// process-unique `.tmp.<hex>` staging name), flush, then std::rename()
// over `<path>` — on POSIX the rename is atomic, so a crash mid-write
// leaves the previous checkpoint intact. The file is a
// line-oriented `key values...` text format with a version header and a
// trailing FNV-1a checksum over everything above it; Load rejects torn or
// hand-edited files and a fingerprint mismatch (different config/engine
// would not reproduce the same windows).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/diskfault.h"
#include "common/parse.h"
#include "common/time.h"
#include "telemetry/dataset.h"
#include "telemetry/tail.h"

namespace domino::runtime {

/// One load-shedding episode: windows in [begin, end) were skipped, not
/// analysed, and are reported as degraded.
struct ShedRange {
  Time begin{0};
  Time end{0};
  long windows = 0;
};

/// Per-stream watchdog tallies (indexed by telemetry::StreamId).
struct StallState {
  long stall_events = 0;
  long recoveries = 0;
  bool stalled = false;
};

struct LiveCheckpoint {
  /// Config/engine fingerprint; resume refuses a mismatched one.
  std::string fingerprint;

  Time next_begin{0};     ///< First window the detector has NOT analysed.
  Time ingest_limit{0};   ///< Tail-reader ingest horizon at checkpoint time.
  Time retention_cut{0};  ///< Everything before this has been evicted.
  Time anchor{0};         ///< Dataset begin; the poll/retention grid origin.
  long poll_count = 0;

  long windows = 0;
  long chains = 0;
  long insufficient = 0;
  long resets = 0;
  long checkpoints_written = 0;
  std::uint64_t chainlog_bytes = 0;  ///< Truncate chains.jsonl to this.
  /// Windows processed at the last *cadence-counted* checkpoint. A drain
  /// checkpoint (graceful shutdown) persists progress without consuming a
  /// cadence slot; recording the cadence origin separately lets the
  /// resumed run place its periodic checkpoints exactly where an
  /// undisturbed run would, keeping `checkpoints` counts byte-identical.
  /// -1 in a parsed checkpoint means the writer predates the field; the
  /// reader falls back to `windows`.
  long last_checkpoint_windows = -1;

  long retention_cuts = 0;
  std::uint64_t evicted_records = 0;
  std::uint64_t peak_retained_records = 0;
  Duration peak_retained_span{0};

  // Streaming ranking accumulators (keys are graph-node / chain indices).
  long windows_seen = 0;
  long windows_with_chain = 0;
  long insufficient_windows = 0;
  std::map<int, std::pair<long, long>> cause;        ///< idx -> active, wins.
  std::map<int, std::pair<long, long>> chain_tally;  ///< idx -> count, insuff.

  std::vector<ShedRange> shed;
  std::array<StallState, telemetry::kStreamCount> stalls{};
  /// Per-stream tail positions; resume replays each file to exactly this
  /// byte offset instead of re-deriving stop positions (see tail.h).
  std::array<telemetry::TailCursor, telemetry::kStreamCount> tails{};
};

/// Serialises `cp` (text form, checksummed). Exposed for tests.
std::string FormatCheckpoint(const LiveCheckpoint& cp);

/// Why a checkpoint load failed. Callers branch on this: corruption means
/// "warn and start fresh" (the file is untrusted garbage), while a
/// fingerprint mismatch means "refuse to run" (the file is valid but was
/// written under a different config — resuming would silently mix
/// incompatible analysis state).
enum class CheckpointFailure {
  kNone,                 ///< Load succeeded.
  kMissing,              ///< No file: a fresh start, not a failure.
  kCorrupt,              ///< Torn, tampered, oversized, or unparseable.
  kFingerprintMismatch,  ///< Valid file from a different config/engine.
};

/// Parses a checkpoint; returns false (with `*error` set and `*failure`
/// classified) on version, checksum, size-budget, or syntax problems.
/// `expected_fingerprint` empty skips the fingerprint check.
bool ParseCheckpoint(const std::string& text,
                     const std::string& expected_fingerprint,
                     LiveCheckpoint* cp, std::string* error,
                     CheckpointFailure* failure = nullptr,
                     const InputLimits& limits = {});

/// Atomic write-to-temp-then-rename save. Returns false on I/O failure
/// (the previous checkpoint, if any, is left untouched). `fault`, if
/// non-null, is consulted once per save: an injected ENOSPC/EIO fails the
/// write before any bytes land, and an injected short write leaves a torn
/// staging file behind (the checkpoint itself stays previous-or-valid
/// either way — the crash-safety contract holds under injection too).
bool SaveCheckpoint(const LiveCheckpoint& cp, const std::string& path,
                    DiskFaultInjector* fault = nullptr);

/// Loads and validates a checkpoint file. Missing file returns false with
/// an empty error (a fresh start, not a failure). Files larger than
/// limits.max_checkpoint_bytes are rejected as corrupt without being read
/// into memory.
bool LoadCheckpoint(const std::string& path,
                    const std::string& expected_fingerprint,
                    LiveCheckpoint* cp, std::string* error,
                    CheckpointFailure* failure = nullptr,
                    const InputLimits& limits = {});

}  // namespace domino::runtime
