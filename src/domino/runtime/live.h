// Crash-safe supervised live analysis — the `domino live` runtime.
//
// LiveRunner tails a (possibly still growing) dataset directory, feeds the
// sanitizer and the StreamingDetector poll by poll, appends every detected
// chain to <state>/chains.jsonl the moment its window completes, and
// periodically persists a checkpoint so a SIGKILLed process can resume and
// produce byte-identical output (checkpoint.h documents the protocol).
//
// Determinism is the design axis everything else hangs off:
//
//  * Virtual-time poll schedule. Poll k ingests up to limit_k = anchor +
//    k*chunk — a grid fixed by the dataset begin, not by wall clock — so a
//    resumed run re-joins the exact schedule the killed run was on.
//  * Content-driven analysis frontier. Each poll analyses up to
//    min(limit_k, watchdog frontier), both pure functions of file content
//    and poll index. Wall-clock data never reaches chains.jsonl or
//    live_report.json (it only appears in stderr status lines).
//  * Grid-quantised retention. Raw records older than the horizon are
//    evicted with telemetry/retention.h's 1 s-grid cut, keeping the derived
//    series of the retained region bit-identical however long the process
//    has been alive.
//
// Supervision: a per-stream trace-time watchdog (watchdog.h) excludes
// stalled streams from the frontier so one dead stream degrades coverage
// (reduced chain confidence via the sanitizer's tail gap) instead of
// head-of-line-blocking the session; the tail reader retries transient
// ingest failures with exponential backoff. Bounded memory: when the
// analysis backlog exceeds max_backlog_windows the oldest windows are shed
// (StreamingDetector::SkipTo) and recorded in the report as degraded spans
// — never silently dropped.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "domino/runtime/checkpoint.h"
#include "domino/runtime/watchdog.h"
#include "domino/streaming.h"
#include "telemetry/retention.h"
#include "telemetry/sanitize.h"
#include "telemetry/tail.h"

namespace domino::runtime {

struct LiveOptions {
  analysis::DominoConfig detector;
  telemetry::SanitizeOptions sanitize;
  /// Resource budgets for everything this runtime reads from disk (tailed
  /// CSVs, meta.csv, the checkpoint); see common/parse.h.
  InputLimits input{};

  /// Virtual-time poll grid: poll k ingests up to anchor + k*chunk. Must be
  /// a multiple of the detector step (enforced at construction).
  Duration chunk = Seconds(2.0);
  /// Raw-record retention horizon behind the analysis cursor. Clamped up to
  /// window + sanitize.reorder_window + chunk so eviction can never touch
  /// data a future window still needs.
  Duration horizon = Seconds(30.0);
  /// Trace-time lag beyond which a stream is declared stalled and excluded
  /// from the ingest frontier (see watchdog.h).
  Duration stall_deadline = Seconds(5.0);
  /// Tail-reader stop-rule slack past the poll limit (reorder tolerance).
  Duration reorder_guard = Seconds(1.0);
  /// Timestamps further than this past the poll limit are treated as
  /// corrupt and do not advance the stream watermark.
  Duration max_watermark_jump = Seconds(60.0);
  /// Backpressure: max windows analysed per poll before the oldest are
  /// shed. 0 = unlimited (no shedding).
  long max_backlog_windows = 0;
  /// Checkpoint cadence, in analysed windows.
  long checkpoint_every_windows = 8;
  /// Polls without any ingest or analysis progress before a non-follow run
  /// concludes the dataset is complete (safety net for datasets whose meta
  /// lacks an end time).
  int max_idle_polls = 16;
  /// Follow mode: sleep and re-poll when no data arrived instead of
  /// counting idle polls (for tailing a capture that is still being
  /// written).
  bool follow = false;
  int poll_sleep_ms = 200;  ///< Follow-mode sleep between empty polls.
  /// Test hook: call std::_Exit(137) immediately after this process writes
  /// its N-th checkpoint — simulates SIGKILL exactly at a checkpoint
  /// boundary. 0 = off.
  long crash_after_checkpoints = 0;
  /// Cooperative cancellation: when non-null and set, the runner aborts the
  /// current attempt with a "cancelled" error at the next poll boundary
  /// (used by the fleet supervisor's wall-clock session deadlines). The
  /// pointee must outlive the runner. Not part of the config fingerprint.
  const std::atomic<bool>* cancel = nullptr;
  /// Graceful drain: when non-null and set, the runner stops at the next
  /// poll boundary, persists a *drain checkpoint* (progress saved, but no
  /// cadence slot consumed — see LiveCheckpoint::last_checkpoint_windows),
  /// and returns with LiveSummary::drained set instead of finishing. A
  /// later run resumes from the drain checkpoint and produces output
  /// byte-identical to an undisturbed run. The pointee must outlive the
  /// runner. Not part of the config fingerprint.
  const std::atomic<bool>* drain = nullptr;
  /// Deterministic chaos hooks (fleet chaos harness). Each fires once, on a
  /// *fresh* run only (`resumed_ == false`), so a retried attempt resumes
  /// from the checkpoint and runs clean — this is what makes a chaos fault
  /// "recoverable". Not part of the config fingerprint. 0 = off.
  long chaos_crash_after = 0;  ///< _Exit(137) after Nth checkpoint of a
                               ///< fresh run (unlike crash_after_checkpoints
                               ///< which also fires after a resume).
  long chaos_fail_after = 0;   ///< Throw after Nth checkpoint of a fresh run.
  long chaos_wedge_after = 0;  ///< Stop progressing (sleep loop honouring
                               ///< `cancel`) after Nth checkpoint of a
                               ///< fresh run.
  /// Deterministic disk-fault chaos (common/diskfault.h): fails the Nth
  /// guarded durability write (checkpoint save or report write) of a
  /// *fresh* run with ENOSPC/EIO/a short write. The failed write escalates
  /// to an attempt failure, so under a fleet the session takes the
  /// retry/quarantine path; the retried attempt resumes clean. kNone = off.
  DiskFaultSpec disk_fault{};
  /// Sharded fleet fencing (shard.h): when `fence_lease_dir` is non-empty,
  /// the runner proves — before every checkpoint save, the report write,
  /// and at every poll boundary — that the session lease at that directory
  /// still carries `fence_token`. A mismatch means the lease was stolen
  /// (this box was presumed dead): the attempt throws a "fenced: ..."
  /// runtime_error without touching another file, so a zombie daemon can
  /// never clobber the new owner's state. Not part of the config
  /// fingerprint (ownership is per-attempt, not per-analysis).
  std::string fence_lease_dir;
  std::uint64_t fence_token = 0;
  /// Suppress per-poll stderr status lines.
  bool quiet = false;
};

/// What Run() hands back to the CLI / supervisor (wall-clock-free).
struct LiveSummary {
  std::string dataset_dir;
  long polls = 0;
  long windows = 0;
  long chains = 0;
  long insufficient_chains = 0;
  long resets = 0;
  long checkpoints = 0;
  long shed_windows = 0;
  long stalled_streams = 0;  ///< Streams stalled at end of run.
  bool resumed = false;      ///< Run continued from a checkpoint.
  bool drained = false;      ///< Run stopped by a drain request (resumable).
  std::string report_path;
  std::string chains_path;
};

/// Streaming root-cause ranking: per-window winners accumulated with
/// cause base rates *so far* (batch ranking re-scores with final rates; a
/// live pipeline cannot, so its winners are the anytime variant — equally
/// deterministic, checkpointable in O(nodes)).
struct LiveRanking {
  long windows_seen = 0;
  long windows_with_chain = 0;
  long insufficient_windows = 0;
  std::map<int, std::pair<long, long>> cause;        ///< idx -> active, wins.
  std::map<int, std::pair<long, long>> chain_tally;  ///< idx -> count, insuff.

  void OnWindow(const analysis::WindowResult& w,
                const analysis::Detector& detector);
};

class LiveRunner {
 public:
  /// `state_dir` receives chains.jsonl, live_report.json and live.ckpt; it
  /// is created if missing. Throws std::runtime_error on unusable state
  /// (corrupt checkpoint, fingerprint mismatch, meta never appearing).
  LiveRunner(std::string dataset_dir, std::string state_dir,
             analysis::CausalGraph graph, LiveOptions opts);

  /// Runs the session to completion (dataset end, or idle cap). Resumes
  /// from <state>/live.ckpt automatically when one is present.
  LiveSummary Run();

  /// Config/engine fingerprint stored in checkpoints (exposed for tests).
  [[nodiscard]] const std::string& fingerprint() const { return fingerprint_; }

 private:
  bool AwaitMeta();
  /// Throws "cancelled" when the supervisor's cancel token is set.
  void CheckCancel() const;
  /// Sharded fencing: throws "fenced: ..." when the session lease no
  /// longer carries our token (see LiveOptions::fence_lease_dir). No-op
  /// when fencing is off.
  void CheckFence() const;
  /// Chaos hook: after the configured checkpoint count of a fresh run,
  /// stop progressing (sleep loop honouring the cancel token).
  void MaybeChaosWedge();
  /// One poll step; returns false when the session is finished.
  bool PollOnce();
  [[nodiscard]] bool DrainRequested() const;
  void AdvanceAnalysis(Time advance_to, bool final_poll);
  void ApplyBackpressure(Time advance_to);
  [[nodiscard]] LiveCheckpoint BuildCheckpoint() const;
  void WriteCheckpoint();
  /// Persist progress for a graceful drain without consuming a cadence
  /// slot. Best-effort: on write failure the previous periodic checkpoint
  /// still resumes correctly, just replaying more.
  void WriteDrainCheckpoint();
  void FinishRun();
  [[nodiscard]] std::string BuildLiveReportJson(
      const telemetry::SanitizeReport& final_health) const;
  void Status(const char* stage) const;

  std::string dataset_dir_;
  std::string state_dir_;
  LiveOptions opts_;
  std::string fingerprint_;

  telemetry::TailingDatasetReader reader_;
  telemetry::SessionDataset ds_;  ///< Retained raw records.
  analysis::StreamingDetector streaming_;
  std::optional<StreamWatchdog> watchdog_;  ///< Built once meta is known.
  LiveRanking ranking_;
  telemetry::RetentionStats retention_;
  std::vector<ShedRange> shed_;

  Time anchor_{0};
  Time meta_end_{0};  ///< Time{0} = unknown.
  Time cut_{0};
  Time limit_{0};
  Time analyzed_to_{0};
  long poll_count_ = 0;
  long checkpoints_written_ = 0;
  long process_checkpoints_ = 0;  ///< Since this process started (crash hook).
  long last_checkpoint_windows_ = 0;
  long last_resets_ = 0;
  int idle_polls_ = 0;
  bool resumed_ = false;
  bool finished_ = false;
  bool drained_ = false;
  DiskFaultInjector diskfault_;

  std::ofstream chain_log_;
  std::uint64_t chainlog_bytes_ = 0;
  std::array<StallState, telemetry::kStreamCount> restored_stalls_{};
  std::array<telemetry::TailCursor, telemetry::kStreamCount> restored_tails_{};
  bool have_restored_stalls_ = false;
};

/// Default state directory for a dataset (<dataset>/live_state).
std::string DefaultStateDir(const std::string& dataset_dir);

}  // namespace domino::runtime
