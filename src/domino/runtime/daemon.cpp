#include "domino/runtime/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "domino/runtime/live.h"
#include "domino/runtime/shard.h"

namespace domino::runtime {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

constexpr const char* kManifestHeader = "domino-fleet-manifest v1";
/// Manifests are a few hundred bytes per session; anything bigger than
/// this at the manifest path is garbage and must not be slurped.
constexpr std::uintmax_t kMaxManifestBytes = 64ull << 20;

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Tokenising line parser with typed accessors; any failure poisons the
/// parse (checked per line). Mirrors the checkpoint reader.
class Reader {
 public:
  explicit Reader(std::istringstream& is) : is_(is) {}
  std::int64_t I() {
    std::int64_t v = 0;
    if (!(is_ >> v)) ok_ = false;
    return v;
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  std::istringstream& is_;
  bool ok_ = true;
};

/// The rest of the line after the key, minus the single separator space.
std::string RestOfLine(std::istringstream& ls) {
  std::string rest;
  std::getline(ls, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  return rest;
}

int ManifestStatus(const SessionOutcome& o) {
  if (o.ok) return 1;
  if (o.quarantined) return 2;
  if (o.fenced) return 3;
  return 0;  // Suspended (or never started): open, resume from checkpoint.
}

}  // namespace

std::string FormatFleetManifest(const FleetManifest& m) {
  std::ostringstream os;
  os << kManifestHeader << "\n";
  os << "config " << m.workers << " " << m.max_attempts << " "
     << m.global_backlog_windows << " "
     << (m.isolate == IsolationMode::kProcess ? 1 : 0) << "\n";
  if (!m.owner.empty()) os << "owner " << m.owner << "\n";
  for (const ManifestEntry& e : m.sessions) {
    const SessionOutcome& o = e.seed.outcome;
    const int status = e.seed.terminal ? ManifestStatus(o) : 0;
    const int attempts = e.seed.terminal ? o.attempts : e.seed.attempts;
    os << "session " << status << " " << attempts << "\n";
    // Paths and tenants may contain spaces: each is the rest of its line.
    os << "dataset " << e.spec.dataset_dir << "\n";
    os << "state " << e.spec.state_dir << "\n";
    os << "tenant " << e.spec.tenant << "\n";
    if (e.seed.terminal) {
      const LiveSummary& s = o.summary;
      os << "outcome " << (o.deadline_exceeded ? 1 : 0) << " " << o.exit_code
         << " " << o.term_signal << " " << (o.has_partial ? 1 : 0) << " "
         << o.checkpointed_to_us << "\n";
      os << "summary " << s.polls << " " << s.windows << " " << s.chains
         << " " << s.insufficient_chains << " " << s.resets << " "
         << s.checkpoints << " " << s.shed_windows << " "
         << s.stalled_streams << " " << (s.resumed ? 1 : 0) << "\n";
      if (!o.error.empty()) os << "error " << o.error << "\n";
    }
  }
  std::string body = os.str();
  return body + "checksum " + Hex64(Fnv1a(body)) + "\n";
}

bool ParseFleetManifest(const std::string& text, FleetManifest* out,
                        std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "manifest: " + why;
    return false;
  };
  // Checksum first: a torn manifest must be rejected before any field is
  // trusted (same protocol as checkpoints).
  std::size_t mark = text.rfind("checksum ");
  if (mark == std::string::npos || (mark != 0 && text[mark - 1] != '\n')) {
    return fail("missing checksum line");
  }
  std::string body = text.substr(0, mark);
  std::istringstream tail(text.substr(mark));
  std::string word, digest;
  tail >> word >> digest;
  if (digest != Hex64(Fnv1a(body))) {
    return fail("checksum mismatch (torn or corrupted write)");
  }
  if (text.substr(mark) != "checksum " + digest + "\n") {
    return fail("trailing bytes after checksum line");
  }

  FleetManifest m;
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != kManifestHeader) {
    return fail("bad or unsupported version header");
  }
  bool have_config = false;
  ManifestEntry* cur = nullptr;
  bool cur_outcome = false, cur_summary = false;
  auto finish_entry = [&]() -> bool {
    if (cur == nullptr) return true;
    if (cur->spec.dataset_dir.empty()) return false;
    if (cur->spec.state_dir.empty()) return false;
    if (cur->seed.terminal && !(cur_outcome && cur_summary)) return false;
    cur->seed.outcome.dataset_dir = cur->spec.dataset_dir;
    cur->seed.outcome.tenant = cur->spec.tenant;
    cur->seed.outcome.summary.dataset_dir = cur->spec.dataset_dir;
    return true;
  };
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    Reader r(ls);
    if (key == "config") {
      m.workers = static_cast<int>(r.I());
      m.max_attempts = static_cast<int>(r.I());
      m.global_backlog_windows = static_cast<long>(r.I());
      const std::int64_t iso = r.I();
      if (!r.ok() || (iso != 0 && iso != 1) || m.workers < 1 ||
          m.max_attempts < 1 || m.global_backlog_windows < 0) {
        return fail("malformed config line");
      }
      m.isolate =
          iso == 1 ? IsolationMode::kProcess : IsolationMode::kThread;
      have_config = true;
    } else if (key == "session") {
      if (!finish_entry()) return fail("incomplete session entry");
      const std::int64_t status = r.I();
      const std::int64_t attempts = r.I();
      if (!r.ok() || status < 0 || status > 3 || attempts < 0 ||
          attempts > 1'000'000) {
        return fail("malformed session line");
      }
      m.sessions.emplace_back();
      cur = &m.sessions.back();
      cur_outcome = cur_summary = false;
      cur->seed.terminal = status != 0;
      cur->seed.attempts = static_cast<int>(attempts);
      cur->seed.outcome.attempts = static_cast<int>(attempts);
      cur->seed.outcome.ok = status == 1;
      cur->seed.outcome.quarantined = status == 2;
      cur->seed.outcome.fenced = status == 3;
    } else if (key == "owner") {
      if (cur != nullptr) return fail("owner line inside a session");
      m.owner = RestOfLine(ls);
    } else if (key == "dataset") {
      if (cur == nullptr) return fail("dataset line outside a session");
      cur->spec.dataset_dir = RestOfLine(ls);
    } else if (key == "state") {
      if (cur == nullptr) return fail("state line outside a session");
      cur->spec.state_dir = RestOfLine(ls);
    } else if (key == "tenant") {
      if (cur == nullptr) return fail("tenant line outside a session");
      cur->spec.tenant = RestOfLine(ls);
    } else if (key == "outcome") {
      if (cur == nullptr) return fail("outcome line outside a session");
      SessionOutcome& o = cur->seed.outcome;
      o.deadline_exceeded = r.I() != 0;
      o.exit_code = static_cast<int>(r.I());
      o.term_signal = static_cast<int>(r.I());
      o.has_partial = r.I() != 0;
      o.checkpointed_to_us = r.I();
      if (!r.ok()) return fail("malformed outcome line");
      cur_outcome = true;
    } else if (key == "summary") {
      if (cur == nullptr) return fail("summary line outside a session");
      LiveSummary& s = cur->seed.outcome.summary;
      s.polls = static_cast<long>(r.I());
      s.windows = static_cast<long>(r.I());
      s.chains = static_cast<long>(r.I());
      s.insufficient_chains = static_cast<long>(r.I());
      s.resets = static_cast<long>(r.I());
      s.checkpoints = static_cast<long>(r.I());
      s.shed_windows = static_cast<long>(r.I());
      s.stalled_streams = static_cast<long>(r.I());
      s.resumed = r.I() != 0;
      if (!r.ok()) return fail("malformed summary line");
      cur_summary = true;
    } else if (key == "error") {
      if (cur == nullptr) return fail("error line outside a session");
      cur->seed.outcome.error = RestOfLine(ls);
    } else {
      // The checksum already proved these bytes are exactly what a writer
      // produced, so an unknown key is version skew — refuse rather than
      // resume with half the state.
      return fail("unknown key '" + key + "'");
    }
  }
  if (!finish_entry()) return fail("incomplete session entry");
  if (!have_config) return fail("missing config line");
  *out = std::move(m);
  if (error != nullptr) error->clear();
  return true;
}

bool SaveFleetManifest(const FleetManifest& m, const std::string& path,
                       DiskFaultInjector* fault, std::string* error) {
  return AtomicWriteFile(path, FormatFleetManifest(m), /*fsync_file=*/true,
                         fault, error);
}

bool LoadFleetManifest(const std::string& path, FleetManifest* out,
                       std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) error->clear();
    return false;
  }
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  if (size < 0 || static_cast<std::uintmax_t>(size) > kMaxManifestBytes) {
    if (error != nullptr) {
      *error = "manifest: implausible size " + std::to_string(size) +
               " bytes at " + path;
    }
    return false;
  }
  f.seekg(0);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseFleetManifest(buf.str(), out, error);
}

FleetManifest BuildFleetManifest(const FleetReport& report,
                                 const std::vector<SessionSpec>& specs) {
  FleetManifest m;
  m.workers = report.workers;
  m.max_attempts = report.max_attempts;
  m.global_backlog_windows = report.global_backlog_windows;
  m.isolate = report.isolate;
  const std::size_t n = std::min(specs.size(), report.outcomes.size());
  m.sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ManifestEntry e;
    e.spec = specs[i];
    const SessionOutcome& o = report.outcomes[i];
    if (o.ok || o.quarantined || o.fenced) {
      // Fenced is terminal *for this box* — the stealing box owns the
      // session now and its manifest/done marker carries the real outcome.
      e.seed.terminal = true;
      e.seed.outcome = o;
    } else {
      // Suspended (or otherwise open): the restarted daemon re-queues it
      // with the preserved attempt counter and resumes from the session's
      // own checkpoint.
      e.seed.terminal = false;
      e.seed.attempts = o.attempts;
    }
    m.sessions.push_back(std::move(e));
  }
  return m;
}

bool SessionDirReady(const std::string& dir) {
  try {
    telemetry::TailingDatasetReader reader(dir);
    telemetry::SessionDataset ds;
    return reader.PollMeta(ds);
  } catch (...) {
    return false;
  }
}

std::vector<std::string> ScanForSessions(
    const std::vector<std::string>& roots,
    const std::set<std::string>& known, const std::string& skip_prefix) {
  std::vector<std::string> found;
  for (std::string root : roots) {
    while (root.size() > 1 && root.back() == '/') root.pop_back();
    std::error_code ec;
    fs::directory_iterator it(root, ec);
    if (ec) continue;  // A missing/unreadable root this sweep is not fatal.
    for (const fs::directory_entry& entry : it) {
      std::error_code dec;
      if (!entry.is_directory(dec) || dec) continue;
      const std::string path = entry.path().string();
      const std::string name = entry.path().filename().string();
      if (name.empty() || name.front() == '.') continue;
      if (!skip_prefix.empty() &&
          (path == skip_prefix ||
           path.compare(0, skip_prefix.size() + 1, skip_prefix + "/") ==
               0)) {
        continue;
      }
      if (known.count(path) != 0) continue;
      if (!SessionDirReady(path)) continue;
      found.push_back(path);
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::string SessionStateDirFor(const std::string& state_root,
                               const std::string& dataset_dir) {
  std::string base = fs::path(dataset_dir).filename().string();
  if (base.empty()) base = fs::path(dataset_dir).parent_path().filename().string();
  std::string safe;
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    safe.push_back(ok ? c : '_');
  }
  if (safe.empty()) safe = "session";
  // The path hash disambiguates same-named sessions under different roots
  // and keeps the mapping stable across daemon restarts.
  return state_root + "/" + safe + "_" + Hex64(Fnv1a(dataset_dir));
}

bool ParseTunablesFile(const std::string& path, DaemonTunables* out,
                       std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "tunables: " + why;
    return false;
  };
  std::ifstream f(path);
  if (!f) return fail("cannot read " + path);
  DaemonTunables t;
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // Blank / comment-only line.
    const std::string at = " at line " + std::to_string(lineno);
    if (key == "session_deadline_s") {
      double v = 0;
      if (!(ls >> v) || v < 0) return fail("bad value for " + key + at);
      t.session_deadline_s = v;
    } else {
      long v = 0;
      if (!(ls >> v) || v < 0) return fail("bad value for " + key + at);
      if (key == "max_attempts") {
        if (v > 1000) return fail("max_attempts > 1000" + at);
        t.max_attempts = static_cast<int>(v);
      } else if (key == "backoff_ms") {
        t.backoff_ms = v;
      } else if (key == "backoff_cap_ms") {
        t.backoff_cap_ms = v;
      } else if (key == "scan_interval_ms") {
        t.scan_interval_ms = v;
      } else if (key == "status_interval_ms") {
        t.status_interval_ms = v;
      } else if (key == "drain_grace_ms") {
        t.drain_grace_ms = v;
      } else {
        return fail("unknown key '" + key + "'" + at);
      }
    }
    std::string extra;
    if (ls >> extra) return fail("trailing token '" + extra + "'" + at);
  }
  *out = t;
  return true;
}

namespace {

/// Age in seconds of the newest live.ckpt among the open sessions, or -1
/// when none exists yet. Wall-clock, liveness-only — never byte-compared.
double NewestCheckpointAgeS(const std::vector<std::string>& state_dirs) {
  const auto now = fs::file_time_type::clock::now();
  double best = -1;
  for (const std::string& dir : state_dirs) {
    std::error_code ec;
    const auto t = fs::last_write_time(dir + "/live.ckpt", ec);
    if (ec) continue;
    const double age = std::chrono::duration<double>(now - t).count();
    if (best < 0 || age < best) best = age;
  }
  return best;
}

std::string BuildStatusJson(const char* state,
                            const FleetSupervisor::Status& s,
                            double uptime_s, const std::string& shard_owner,
                            long leases_held, std::size_t remote_sessions) {
  std::ostringstream os;
  char buf[64];
  os << "{\n";
  os << "  \"state\": \"" << state << "\",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", uptime_s);
  os << "  \"uptime_s\": " << buf << ",\n";
  os << "  \"sessions\": {\"known\": " << s.known
     << ", \"active\": " << s.active << ", \"pending\": " << s.pending
     << ", \"retrying\": " << s.retrying
     << ", \"completed\": " << s.completed
     << ", \"quarantined\": " << s.quarantined
     << ", \"suspended\": " << s.suspended
     << ", \"fenced\": " << s.fenced << "},\n";
  if (!shard_owner.empty()) {
    // Per-box shard view: what this box holds vs. what it is watching for
    // a takeover. The merged cross-box view is `domino fleet-status`.
    os << "  \"shard\": {\"owner\": \"" << shard_owner
       << "\", \"leases_held\": " << leases_held
       << ", \"claimed_elsewhere\": " << remote_sessions << "},\n";
  }
  os << "  \"failed_attempts\": " << s.failed_attempts << ",\n";
  os << "  \"progress\": {\"windows\": " << s.total_windows
     << ", \"chains\": " << s.total_chains
     << ", \"shed_windows\": " << s.total_shed_windows << "},\n";
  std::snprintf(buf, sizeof(buf), "%.3f",
                NewestCheckpointAgeS(s.open_state_dirs));
  os << "  \"last_checkpoint_age_s\": " << buf << "\n";
  os << "}\n";
  return os.str();
}

void WriteStatusFile(const std::string& path, const char* state,
                     const FleetSupervisor::Status& s, double uptime_s,
                     bool quiet, const std::string& shard_owner = "",
                     long leases_held = 0, std::size_t remote_sessions = 0) {
  std::string err;
  if (!AtomicWriteFile(path,
                       BuildStatusJson(state, s, uptime_s, shard_owner,
                                       leases_held, remote_sessions),
                       /*fsync_file=*/false, nullptr, &err) &&
      !quiet) {
    // Liveness reporting must never take the daemon down; a monitor that
    // sees a stale file draws the right conclusion anyway.
    std::fprintf(stderr, "serve: status write failed: %s\n", err.c_str());
  }
}

}  // namespace

ServeDaemonResult RunServeDaemon(std::vector<SessionSpec> specs,
                                 analysis::CausalGraph graph,
                                 LiveOptions live, FleetOptions fleet,
                                 const ServeDaemonOptions& dopts) {
  ServeDaemonResult res;
  // The manifest records resolved state dirs, so resolve before merging.
  for (SessionSpec& s : specs) {
    if (s.state_dir.empty()) s.state_dir = DefaultStateDir(s.dataset_dir);
  }
  const bool sharded = !dopts.owner.empty();
  std::unique_ptr<ShardCoordinator> shard;
  if (sharded) {
    if (dopts.state_root.empty()) {
      res.fatal = true;
      res.error = "serve: --owner (sharded mode) requires --state-root";
      return res;
    }
    ShardOptions so;
    so.state_root = dopts.state_root;
    so.owner = dopts.owner;
    so.lease_ttl_ms = dopts.lease_ttl_ms;
    so.heartbeat_ms = dopts.heartbeat_ms;
    try {
      shard = std::make_unique<ShardCoordinator>(std::move(so));
    } catch (const std::exception& e) {
      res.fatal = true;
      res.error = std::string("serve: ") + e.what();
      return res;
    }
  }
  // Sharded pools stay dynamic even without --watch: sessions claimed by
  // another box are admitted later, when their owner finishes or dies.
  fleet.dynamic = dopts.watch || sharded;
  fleet.drain_grace_ms = dopts.drain_grace_ms;

  if (!dopts.manifest_path.empty()) {
    FleetManifest m;
    std::string merr;
    if (LoadFleetManifest(dopts.manifest_path, &m, &merr)) {
      // Resuming under a different admission-budget configuration would
      // change the backlog shares — and with them what a resumed session
      // sheds — silently breaking the byte-identity promise. Refuse.
      if (fleet.workers == 0) fleet.workers = m.workers;
      if (fleet.workers != m.workers ||
          fleet.max_attempts != m.max_attempts ||
          fleet.global_backlog_windows != m.global_backlog_windows ||
          fleet.isolate != m.isolate) {
        res.fatal = true;
        res.error =
            "serve: manifest " + dopts.manifest_path +
            " was written under a different fleet configuration "
            "(workers/max-attempts/global-backlog/isolate); rerun with the "
            "original flags or delete the manifest to start over";
        return res;
      }
      res.resumed = true;
      std::set<std::string> have;
      std::vector<SessionSpec> merged;
      std::vector<SessionSeed> seeds;
      merged.reserve(m.sessions.size() + specs.size());
      for (ManifestEntry& e : m.sessions) {
        have.insert(e.spec.dataset_dir);
        merged.push_back(std::move(e.spec));
        seeds.push_back(std::move(e.seed));
      }
      for (SessionSpec& s : specs) {
        if (have.count(s.dataset_dir) != 0) continue;
        merged.push_back(std::move(s));
        seeds.emplace_back();
      }
      specs = std::move(merged);
      fleet.seeds = std::move(seeds);
      // The chaos schedule indexes the *fresh* run's admission order; the
      // resumed run replays faults through the fresh-run-only hooks of the
      // sessions it re-runs, not through a re-indexed schedule.
      fleet.chaos.clear();
    } else if (!merr.empty()) {
      res.fatal = true;
      res.error = "serve: refusing to start over a corrupt manifest: " +
                  merr + " (delete " + dopts.manifest_path +
                  " to discard it)";
      return res;
    }
  }

  // Sessions a live box elsewhere currently holds. Re-tried every sweep:
  // when the owner finishes, the done marker drops them; when the owner
  // dies, the stale heartbeat lets this box steal the lease and finish the
  // work from the shared checkpoint. Only the helper thread touches this
  // after construction.
  std::vector<SessionSpec> remote;
  if (shard != nullptr) {
    std::vector<SessionSpec> mine;
    std::vector<SessionSeed> mine_seeds;
    std::vector<SessionChaos> mine_chaos;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const bool terminal = i < fleet.seeds.size() && fleet.seeds[i].terminal;
      bool keep = terminal;  // Terminal on this box: reported verbatim,
                             // no lease needed.
      if (!terminal) {
        std::string claim_err;
        switch (shard->TryClaim(specs[i].dataset_dir, &claim_err)) {
          case ClaimResult::kClaimed:
            keep = true;
            break;
          case ClaimResult::kDone:
            // Finished somewhere already; the done marker carries the
            // outcome for `domino fleet-status`.
            if (!fleet.quiet) {
              std::fprintf(stderr,
                           "serve: %s already finished elsewhere, skipping\n",
                           specs[i].dataset_dir.c_str());
            }
            break;
          case ClaimResult::kHeldElsewhere:
            remote.push_back(specs[i]);
            break;
          case ClaimResult::kError:
            std::fprintf(stderr, "serve: claim failed (will retry): %s\n",
                         claim_err.c_str());
            remote.push_back(specs[i]);
            break;
        }
      }
      if (keep) {
        mine.push_back(std::move(specs[i]));
        if (i < fleet.seeds.size()) mine_seeds.push_back(fleet.seeds[i]);
        if (i < fleet.chaos.size()) mine_chaos.push_back(fleet.chaos[i]);
      }
    }
    specs = std::move(mine);
    fleet.seeds = std::move(mine_seeds);
    // The chaos schedule follows each session to whichever box claims it
    // first; sessions taken over later resume from their checkpoints, so
    // the fresh-run-only hooks stay spent (same rule as manifest resume).
    fleet.chaos = std::move(mine_chaos);

    ShardCoordinator* sc = shard.get();
    const bool quiet = fleet.quiet;
    // Per-attempt lease binding: LiveRunner proves this token before every
    // checkpoint/report write (live.h fencing).
    fleet.shard_binding = [sc](const std::string& dataset, std::string* dir,
                               std::uint64_t* token) {
      if (!sc->Held(dataset)) return false;
      *dir = sc->LeaseDirFor(dataset);
      *token = sc->TokenFor(dataset);
      return *token != 0;
    };
    // Checkpoint GC on a shared state root additionally requires a current
    // lease — a box whose lease was stolen must not delete the new owner's
    // checkpoint.
    fleet.gc_guard = [sc](const SessionSpec& s) {
      return sc->SafeToGc(s.dataset_dir);
    };
    fleet.on_terminal = [sc, quiet](const SessionSpec& s,
                                    const SessionOutcome& o) {
      if (o.fenced) {
        sc->Forget(s.dataset_dir);  // The thief owns the lease now.
        return;
      }
      if (o.suspended) return;  // Drain releases leases in the shutdown path.
      if (!o.ok && !o.quarantined) return;
      ShardDoneRecord rec;
      rec.status = o.ok ? 1 : 2;
      rec.attempts = o.attempts;
      rec.windows = o.summary.windows;
      rec.chains = o.summary.chains;
      std::string derr;
      if (!sc->MarkDone(s.dataset_dir, rec, &derr) && !quiet) {
        std::fprintf(stderr, "serve: done marker for %s failed: %s\n",
                     s.dataset_dir.c_str(), derr.c_str());
      }
    };
  }

  // Admission-ordered ledger for the shutdown manifest. Only the helper
  // thread appends after construction, and the final read happens after
  // it is joined.
  std::vector<SessionSpec> all_specs = specs;
  FleetSupervisor sup(std::move(specs), std::move(graph), std::move(live),
                      fleet);

  std::atomic<bool> stop{false};
  const auto start = Clock::now();
  std::thread helper([&] {
    std::set<std::string> known;
    for (const SessionSpec& s : all_specs) known.insert(s.dataset_dir);
    // Claimed-elsewhere sessions are known too: a watch root containing
    // them must not re-admit them without a lease (takeover readmits via
    // the reclaim sweep instead).
    for (const SessionSpec& s : remote) known.insert(s.dataset_dir);
    long scan_ms = std::max(1L, dopts.scan_interval_ms);
    long status_ms = std::max(1L, dopts.status_interval_ms);
    long grace_ms = std::max(0L, dopts.drain_grace_ms);
    auto next_scan = start;
    auto next_status = start;
    auto next_hb = start;
    auto next_reclaim = start;
    bool draining = false, escalated = false;
    bool no_more_sent = !dopts.watch && !sharded;
    Clock::time_point escalate_at{};
    while (!stop.load(std::memory_order_acquire)) {
      const auto now = Clock::now();
      if (!draining && dopts.term_signals != nullptr &&
          dopts.term_signals->load(std::memory_order_relaxed) > 0) {
        draining = true;
        escalate_at = now + std::chrono::milliseconds(grace_ms);
        sup.RequestDrain();
        if (!fleet.quiet) {
          std::fprintf(stderr, "serve: drain requested, checkpointing "
                               "in-flight sessions\n");
        }
      }
      if (draining && !escalated &&
          (now >= escalate_at ||
           (dopts.term_signals != nullptr &&
            dopts.term_signals->load(std::memory_order_relaxed) > 1))) {
        sup.CancelInFlight();
        escalated = true;
      }
      if (dopts.hup_signals != nullptr &&
          dopts.hup_signals->exchange(0, std::memory_order_relaxed) > 0) {
        if (!dopts.tunables_path.empty()) {
          DaemonTunables t;
          std::string terr;
          if (ParseTunablesFile(dopts.tunables_path, &t, &terr)) {
            sup.UpdateTunables(t.max_attempts, t.backoff_ms,
                               t.backoff_cap_ms, t.session_deadline_s);
            if (t.scan_interval_ms > 0) scan_ms = t.scan_interval_ms;
            if (t.status_interval_ms > 0) status_ms = t.status_interval_ms;
            if (t.drain_grace_ms > 0) grace_ms = t.drain_grace_ms;
            if (!fleet.quiet) {
              std::fprintf(stderr, "serve: reloaded tunables from %s\n",
                           dopts.tunables_path.c_str());
            }
          } else {
            std::fprintf(stderr, "serve: SIGHUP reload failed: %s\n",
                         terr.c_str());
          }
        }
        next_scan = now;  // SIGHUP always forces an immediate re-scan.
      }
      if (shard != nullptr && now >= next_hb) {
        // Heartbeat every held lease. A lease that comes back stolen needs
        // no action here: ownership is already forgotten, and the running
        // attempt fences itself at its next poll/checkpoint boundary.
        const std::vector<std::string> lost = shard->RenewHeld();
        if (!fleet.quiet) {
          for (const std::string& d : lost) {
            std::fprintf(stderr,
                         "serve: lease for %s was stolen; fencing the "
                         "running attempt\n",
                         d.c_str());
          }
        }
        next_hb = Clock::now() +
                  std::chrono::milliseconds(shard->effective_heartbeat_ms());
      }
      bool reclaimed_none = false;
      if (shard != nullptr && !draining && now >= next_reclaim) {
        reclaimed_none = true;
        if (!remote.empty()) {
          std::vector<SessionSpec> taken;
          std::vector<SessionSpec> still;
          for (SessionSpec& s : remote) {
            std::string claim_err;
            switch (shard->TryClaim(s.dataset_dir, &claim_err)) {
              case ClaimResult::kClaimed:
                taken.push_back(std::move(s));
                break;
              case ClaimResult::kDone:
                break;  // Finished elsewhere; nothing left to do.
              default:
                still.push_back(std::move(s));
                break;
            }
          }
          remote = std::move(still);
          if (!taken.empty()) {
            reclaimed_none = false;
            if (!fleet.quiet) {
              for (const SessionSpec& s : taken) {
                std::fprintf(stderr, "serve: took over %s\n",
                             s.dataset_dir.c_str());
              }
            }
            all_specs.insert(all_specs.end(), taken.begin(), taken.end());
            sup.AddSessions(std::move(taken));
          }
        }
        next_reclaim = Clock::now() + std::chrono::milliseconds(scan_ms);
      }
      bool swept_nothing = false;
      if (dopts.watch && !draining && now >= next_scan) {
        const std::vector<std::string> fresh =
            ScanForSessions(dopts.watch_roots, known, dopts.state_root);
        if (fresh.empty()) {
          swept_nothing = true;
        } else {
          std::vector<SessionSpec> batch;
          batch.reserve(fresh.size());
          for (const std::string& dir : fresh) {
            known.insert(dir);
            SessionSpec s;
            s.dataset_dir = dir;
            s.state_dir = dopts.state_root.empty()
                              ? DefaultStateDir(dir)
                              : SessionStateDirFor(dopts.state_root, dir);
            if (shard != nullptr) {
              // Discovered sessions go through the same claim gate as
              // operands: only the box that wins the lease admits it.
              std::string claim_err;
              switch (shard->TryClaim(dir, &claim_err)) {
                case ClaimResult::kClaimed:
                  break;
                case ClaimResult::kDone:
                  continue;  // Finished elsewhere already.
                default:
                  remote.push_back(std::move(s));
                  continue;
              }
            }
            batch.push_back(s);
          }
          if (!batch.empty()) {
            all_specs.insert(all_specs.end(), batch.begin(), batch.end());
            if (!fleet.quiet) {
              std::fprintf(stderr, "serve: admitted %zu new session%s\n",
                           batch.size(), batch.size() == 1 ? "" : "s");
            }
            sup.AddSessions(std::move(batch));
          }
        }
        next_scan = Clock::now() + std::chrono::milliseconds(scan_ms);
      }
      if (!dopts.status_path.empty() && now >= next_status) {
        WriteStatusFile(dopts.status_path,
                        draining ? "draining" : "running", sup.Snapshot(),
                        std::chrono::duration<double>(now - start).count(),
                        fleet.quiet, dopts.owner,
                        shard != nullptr ? shard->held_count() : 0,
                        remote.size());
        next_status = Clock::now() + std::chrono::milliseconds(status_ms);
      }
      // Idle exit: everything this box knows about is terminal, the last
      // sweep found nothing new, and — sharded — no session is still open
      // on another box (a crash there would hand this box the work).
      const bool watch_idle = !dopts.watch || swept_nothing;
      const bool shard_idle =
          shard == nullptr || (reclaimed_none && remote.empty());
      if (dopts.exit_when_idle && (dopts.watch || sharded) &&
          !no_more_sent && watch_idle && shard_idle) {
        const FleetSupervisor::Status s = sup.Snapshot();
        if (s.active == 0 && s.pending == 0) {
          sup.NoMoreSessions();
          no_more_sent = true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  res.report = sup.Run();
  stop.store(true, std::memory_order_release);
  helper.join();

  if (!dopts.manifest_path.empty()) {
    // Best-effort: a lost manifest costs resume efficiency (open sessions
    // re-run from their checkpoints, terminal ones re-complete), never
    // correctness — so a full disk here must not turn a clean drain into
    // a crash.
    std::string serr;
    FleetManifest m = BuildFleetManifest(res.report, all_specs);
    m.owner = dopts.owner;
    if (!SaveFleetManifest(m, dopts.manifest_path, nullptr, &serr)) {
      std::fprintf(stderr, "serve: manifest write failed: %s\n",
                   serr.c_str());
    }
  }
  if (shard != nullptr) {
    // Leases still held here belong to suspended (drained) sessions —
    // terminal ones were released by MarkDone, fenced ones forgotten.
    // Releasing them lets a surviving box claim and finish the work
    // immediately instead of waiting out the TTL. After the manifest
    // write, so this box's own resume ledger is already durable.
    shard->ReleaseAll();
  }
  if (!dopts.status_path.empty()) {
    WriteStatusFile(
        dopts.status_path, "stopped", sup.Snapshot(),
        std::chrono::duration<double>(Clock::now() - start).count(),
        fleet.quiet, dopts.owner,
        shard != nullptr ? shard->held_count() : 0, remote.size());
  }
  return res;
}

}  // namespace domino::runtime
