#include "domino/runtime/shard.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/parse.h"
#include "domino/report.h"
#include "domino/runtime/daemon.h"

namespace domino::runtime {
namespace {

namespace fs = std::filesystem;

constexpr const char* kDoneHeader = "domino-shard-done v1";

/// Done markers and manifests are small; anything bigger is garbage.
constexpr std::uintmax_t kMaxDoneBytes = 64 << 10;
constexpr std::uintmax_t kMaxManifestBytes = 64ull << 20;

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool SlurpBounded(const std::string& path, std::uintmax_t cap,
                  std::string* out) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || size > cap) return false;
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad()) return false;
  *out = os.str();
  return true;
}

std::int64_t SystemNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string DonePath(const std::string& lease_dir) {
  return lease_dir + "/done";
}

const char* StatusName(int status) {
  switch (status) {
    case 1:
      return "done";
    case 2:
      return "quarantined";
    case 3:
      return "fenced";
    default:
      return "open";
  }
}

/// Merge precedence for one session seen from several boxes: a done marker
/// beats everything (it survives a SIGKILLed box whose manifest never
/// landed), a terminal manifest entry beats a fenced one (the fenced box
/// explicitly did NOT finish the work), and fenced beats open.
int StatusRank(int status, bool from_done_marker) {
  if (from_done_marker) return 4;
  switch (status) {
    case 1:
    case 2:
      return 3;
    case 3:
      return 1;
    default:
      return 0;
  }
}

}  // namespace

std::string FormatShardDone(const ShardDoneRecord& rec) {
  std::ostringstream os;
  os << kDoneHeader << "\n";
  os << "dataset " << rec.dataset_dir << "\n";
  os << "owner " << rec.owner << "\n";
  os << "token " << rec.token << "\n";
  os << "status " << rec.status << "\n";
  os << "attempts " << rec.attempts << "\n";
  os << "windows " << rec.windows << "\n";
  os << "chains " << rec.chains << "\n";
  std::string body = os.str();
  return body + "checksum " + Hex64(Fnv1a(body)) + "\n";
}

bool ParseShardDone(const std::string& text, ShardDoneRecord* out,
                    std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "shard-done: " + why;
    return false;
  };
  std::size_t mark = text.rfind("checksum ");
  if (mark == std::string::npos || (mark != 0 && text[mark - 1] != '\n')) {
    return fail("missing checksum line");
  }
  std::string body = text.substr(0, mark);
  std::istringstream tail(text.substr(mark));
  std::string word, digest;
  tail >> word >> digest;
  if (digest != Hex64(Fnv1a(body))) {
    return fail("checksum mismatch (torn or corrupted write)");
  }
  if (text.substr(mark) != "checksum " + digest + "\n") {
    return fail("trailing bytes after checksum line");
  }

  ShardDoneRecord rec;
  bool saw_dataset = false, saw_status = false;
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != kDoneHeader) {
    return fail("bad header (want '" + std::string(kDoneHeader) + "')");
  }
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    std::string value;
    std::getline(ls, value);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    std::int64_t n = 0;
    std::uint64_t u = 0;
    if (key == "dataset") {
      if (value.empty()) return fail("empty dataset");
      rec.dataset_dir = value;
      saw_dataset = true;
    } else if (key == "owner") {
      rec.owner = value;
    } else if (key == "token") {
      if (!ParseUint64(value, u)) return fail("bad token '" + value + "'");
      rec.token = u;
    } else if (key == "status") {
      if (!ParseInt64In(value, 1, 2, n)) {
        return fail("bad status '" + value + "' (want 1|2)");
      }
      rec.status = static_cast<int>(n);
      saw_status = true;
    } else if (key == "attempts") {
      if (!ParseInt64In(value, 0, 1'000'000, n)) {
        return fail("bad attempts '" + value + "'");
      }
      rec.attempts = static_cast<int>(n);
    } else if (key == "windows") {
      if (!ParseInt64(value, n) || n < 0) {
        return fail("bad windows '" + value + "'");
      }
      rec.windows = static_cast<long>(n);
    } else if (key == "chains") {
      if (!ParseInt64(value, n) || n < 0) {
        return fail("bad chains '" + value + "'");
      }
      rec.chains = static_cast<long>(n);
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!saw_dataset || !saw_status) return fail("missing dataset/status");
  *out = rec;
  return true;
}

ShardCoordinator::ShardCoordinator(ShardOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.state_root.empty()) {
    throw std::invalid_argument("shard: state_root is required");
  }
  if (opts_.owner.empty()) {
    throw std::invalid_argument("shard: owner is required");
  }
  if (opts_.lease_ttl_ms <= 0) {
    throw std::invalid_argument("shard: lease_ttl_ms must be positive");
  }
  if (!opts_.clock) opts_.clock = SystemNowMs;
}

std::string ShardCoordinator::LeaseDirFor(
    const std::string& dataset_dir) const {
  // The session key is the basename of the stable dataset->state mapping,
  // so every box derives the same lease directory independently.
  const std::string state =
      SessionStateDirFor(opts_.state_root, dataset_dir);
  return opts_.state_root + "/shard/" +
         fs::path(state).filename().string();
}

ClaimResult ShardCoordinator::TryClaim(const std::string& dataset_dir,
                                       std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string dir = LeaseDirFor(dataset_dir);
  std::string done_text;
  ShardDoneRecord done;
  std::string perr;
  if (SlurpBounded(DonePath(dir), kMaxDoneBytes, &done_text) &&
      ParseShardDone(done_text, &done, &perr)) {
    return ClaimResult::kDone;
  }
  auto it = leases_.find(dataset_dir);
  if (it == leases_.end()) {
    it = leases_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(dataset_dir),
                      std::forward_as_tuple(dir, opts_.owner))
             .first;
  }
  switch (it->second.TryAcquire(opts_.clock(), opts_.lease_ttl_ms,
                                /*fault=*/nullptr, error)) {
    case LeaseAcquire::kAcquired:
      return ClaimResult::kClaimed;
    case LeaseAcquire::kHeld:
      return ClaimResult::kHeldElsewhere;
    case LeaseAcquire::kIoError:
      break;
  }
  return ClaimResult::kError;
}

std::vector<std::string> ShardCoordinator::RenewHeld() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> lost;
  const std::int64_t now = opts_.clock();
  for (auto& [dataset, lease] : leases_) {
    if (!lease.held()) continue;
    std::string err;
    if (lease.Renew(now, /*fault=*/nullptr, &err) == LeaseRenew::kLost) {
      lost.push_back(dataset);
    }
    // kIoError: still the owner; the next tick retries. The TTL gives the
    // box several heartbeat periods of filesystem trouble before anyone
    // may steal.
  }
  return lost;
}

bool ShardCoordinator::MarkDone(const std::string& dataset_dir,
                                const ShardDoneRecord& rec,
                                std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(dataset_dir);
  if (it == leases_.end() || !it->second.held()) {
    if (error != nullptr) *error = "shard: lease not held";
    return false;
  }
  LeaseFile& lease = it->second;
  if (!LeaseTokenCurrent(lease.lease_dir(), lease.info().token)) {
    // Fenced: the new owner's done marker (present or future) is the
    // truth; touch nothing.
    lease.Forget();
    if (error != nullptr) *error = "shard: fenced (lease was stolen)";
    return false;
  }
  ShardDoneRecord full = rec;
  full.dataset_dir = dataset_dir;
  full.owner = opts_.owner;
  full.token = lease.info().token;
  // Done marker BEFORE release: a crash between the two leaves a marker
  // behind, and markers win over stale leases — the session is never
  // re-run. The reverse order would allow a re-claim of finished work.
  if (!AtomicWriteFile(DonePath(lease.lease_dir()), FormatShardDone(full),
                       /*fsync_file=*/true, /*fault=*/nullptr, error)) {
    return false;
  }
  std::string rerr;
  lease.Release(&rerr);
  return true;
}

void ShardCoordinator::Release(const std::string& dataset_dir) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(dataset_dir);
  if (it == leases_.end()) return;
  std::string err;
  it->second.Release(&err);
}

void ShardCoordinator::ReleaseAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [dataset, lease] : leases_) {
    std::string err;
    lease.Release(&err);
  }
}

void ShardCoordinator::Forget(const std::string& dataset_dir) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(dataset_dir);
  if (it != leases_.end()) it->second.Forget();
}

bool ShardCoordinator::Held(const std::string& dataset_dir) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(dataset_dir);
  return it != leases_.end() && it->second.held();
}

std::uint64_t ShardCoordinator::TokenFor(const std::string& dataset_dir) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(dataset_dir);
  if (it == leases_.end() || !it->second.held()) return 0;
  return it->second.info().token;
}

bool ShardCoordinator::SafeToGc(const std::string& dataset_dir) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(dataset_dir);
  if (it == leases_.end() || !it->second.held()) return false;
  return LeaseTokenCurrent(it->second.lease_dir(),
                           it->second.info().token);
}

long ShardCoordinator::held_count() {
  std::lock_guard<std::mutex> lk(mu_);
  long n = 0;
  for (auto& [dataset, lease] : leases_) {
    if (lease.held()) ++n;
  }
  return n;
}

bool CollectFleetStatus(const std::string& state_root, FleetStatusView* out,
                        std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "fleet-status: " + why;
    return false;
  };
  std::error_code ec;
  if (!fs::is_directory(state_root, ec)) {
    return fail("'" + state_root + "' is not a directory");
  }

  struct Best {
    FleetStatusSession s;
    int rank = -1;
  };
  std::map<std::string, Best> merged;
  auto offer = [&](FleetStatusSession s, int rank) {
    Best& b = merged[s.dataset_dir];
    // Equal-rank ties resolve by owner order so the merge is deterministic
    // whatever directory enumeration produced.
    if (rank > b.rank || (rank == b.rank && s.owner < b.s.owner)) {
      b.rank = rank;
      b.s = std::move(s);
    }
  };

  // Every box's manifest. Corrupt or torn manifests are skipped, not
  // fatal: a crashed box must not block the fleet view (its sessions
  // surface through done markers or other boxes' manifests).
  std::vector<std::string> manifest_paths;
  for (const auto& entry : fs::directory_iterator(state_root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("fleet", 0) == 0 &&
        name.size() > 9 /* "fleet" + ".manifest" overlap-safe */ &&
        name.compare(name.size() - 9, 9, ".manifest") == 0) {
      manifest_paths.push_back(entry.path().string());
    }
  }
  if (ec) return fail("cannot scan '" + state_root + "'");
  std::sort(manifest_paths.begin(), manifest_paths.end());
  for (const std::string& path : manifest_paths) {
    std::string text;
    if (!SlurpBounded(path, kMaxManifestBytes, &text)) continue;
    FleetManifest m;
    std::string perr;
    if (!ParseFleetManifest(text, &m, &perr)) continue;
    for (const ManifestEntry& e : m.sessions) {
      FleetStatusSession s;
      s.dataset_dir = e.spec.dataset_dir;
      s.owner = m.owner;
      s.status = !e.seed.terminal         ? 0
                 : e.seed.outcome.ok      ? 1
                 : e.seed.outcome.fenced  ? 3
                                          : 2;
      s.windows = e.seed.outcome.summary.windows;
      s.chains = e.seed.outcome.summary.chains;
      const int rank = StatusRank(s.status, /*from_done_marker=*/false);
      offer(std::move(s), rank);
    }
  }

  // Done markers: the authoritative terminal records.
  const std::string shard_root = state_root + "/shard";
  if (fs::is_directory(shard_root, ec)) {
    for (const auto& entry : fs::directory_iterator(shard_root, ec)) {
      std::string text;
      if (!SlurpBounded(DonePath(entry.path().string()), kMaxDoneBytes,
                        &text)) {
        continue;
      }
      ShardDoneRecord rec;
      std::string perr;
      if (!ParseShardDone(text, &rec, &perr)) continue;
      FleetStatusSession s;
      s.dataset_dir = rec.dataset_dir;
      s.owner = rec.owner;
      s.status = rec.status;
      s.windows = rec.windows;
      s.chains = rec.chains;
      const int rank = StatusRank(rec.status, /*from_done_marker=*/true);
      offer(std::move(s), rank);
    }
  }

  FleetStatusView view;
  view.sessions.reserve(merged.size());
  for (auto& [dataset, best] : merged) {
    view.sessions.push_back(std::move(best.s));
  }
  // std::map iteration is already dataset-sorted — the JSON order.
  *out = std::move(view);
  if (error != nullptr) error->clear();
  return true;
}

std::string BuildFleetStatusJson(const FleetStatusView& view,
                                 bool with_owners) {
  using analysis::JsonEscape;
  long done = 0, open = 0, quarantined = 0, fenced = 0;
  long windows = 0, chains = 0;
  std::map<std::string, long> by_owner;
  for (const FleetStatusSession& s : view.sessions) {
    switch (s.status) {
      case 1:
        ++done;
        break;
      case 2:
        ++quarantined;
        break;
      case 3:
        ++fenced;
        break;
      default:
        ++open;
        break;
    }
    windows += s.windows;
    chains += s.chains;
    ++by_owner[s.owner];
  }
  // The default document is owner- and attempt-free on purpose: a takeover
  // changes both (the survivor re-runs a stolen session as its own attempt
  // 1), and this JSON is byte-compared against an undisturbed single-box
  // run. Everything below is resume-invariant.
  std::ostringstream os;
  os << "{\n";
  os << "  \"counts\": {\"sessions\": " << view.sessions.size()
     << ", \"done\": " << done << ", \"open\": " << open
     << ", \"quarantined\": " << quarantined << ", \"fenced\": " << fenced
     << "},\n";
  os << "  \"progress\": {\"windows\": " << windows
     << ", \"chains\": " << chains << "},\n";
  if (with_owners) {
    os << "  \"owners\": {";
    bool first = true;
    for (const auto& [owner, n] : by_owner) {
      os << (first ? "" : ", ") << "\"" << JsonEscape(owner)
         << "\": " << n;
      first = false;
    }
    os << "},\n";
  }
  os << "  \"sessions\": [";
  for (std::size_t i = 0; i < view.sessions.size(); ++i) {
    const FleetStatusSession& s = view.sessions[i];
    os << (i == 0 ? "" : ",") << "\n    {\"dataset\": \""
       << JsonEscape(s.dataset_dir) << "\", \"status\": \""
       << StatusName(s.status) << "\"";
    if (with_owners) os << ", \"owner\": \"" << JsonEscape(s.owner) << "\"";
    os << ", \"windows\": " << s.windows << ", \"chains\": " << s.chains
       << "}";
  }
  os << (view.sessions.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace domino::runtime
