#include "domino/runtime/supervisor.h"

#include <exception>
#include <thread>

namespace domino::runtime {

namespace {

SessionOutcome RunOne(const SessionSpec& spec,
                      const analysis::CausalGraph& graph,
                      const LiveOptions& opts) {
  SessionOutcome out;
  out.dataset_dir = spec.dataset_dir;
  try {
    LiveRunner runner(spec.dataset_dir,
                      spec.state_dir.empty()
                          ? DefaultStateDir(spec.dataset_dir)
                          : spec.state_dir,
                      graph, opts);
    out.summary = runner.Run();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown error";
  }
  return out;
}

}  // namespace

std::vector<SessionOutcome> RunSessions(const std::vector<SessionSpec>& specs,
                                        const analysis::CausalGraph& graph,
                                        const LiveOptions& opts,
                                        bool parallel) {
  std::vector<SessionOutcome> outcomes(specs.size());
  if (!parallel || specs.size() <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      outcomes[i] = RunOne(specs[i], graph, opts);
    }
    return outcomes;
  }
  // Thread-per-session: each thread owns its outcome slot exclusively;
  // graph and opts are read-only (every runner copies them at
  // construction), so there is no cross-session synchronisation at all.
  std::vector<std::thread> threads;
  threads.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    threads.emplace_back([&, i] { outcomes[i] = RunOne(specs[i], graph, opts); });
  }
  for (std::thread& t : threads) t.join();
  return outcomes;
}

}  // namespace domino::runtime
