#include "domino/runtime/supervisor.h"

#include "domino/runtime/checkpoint.h"
#include "domino/runtime/fleet.h"

namespace domino::runtime {

bool LoadProgressFromState(const std::string& state_dir, LiveSummary* out,
                           std::int64_t* checkpointed_to_us) {
  // An empty expected fingerprint accepts any config's checkpoint: this is
  // a read-only progress probe, not a resume, so mixing schedules is not a
  // risk. The checksum still rejects torn/corrupt files.
  LiveCheckpoint cp;
  std::string error;
  CheckpointFailure failure = CheckpointFailure::kNone;
  if (!LoadCheckpoint(state_dir + "/live.ckpt", /*expected_fingerprint=*/"",
                      &cp, &error, &failure, InputLimits{})) {
    return false;
  }
  LiveSummary sum;
  sum.polls = cp.poll_count;
  sum.windows = cp.windows;
  sum.chains = cp.chains;
  sum.insufficient_chains = cp.insufficient;
  sum.resets = cp.resets;
  sum.checkpoints = cp.checkpoints_written;
  for (const ShedRange& s : cp.shed) sum.shed_windows += s.windows;
  for (const StallState& s : cp.stalls) {
    if (s.stalled) ++sum.stalled_streams;
  }
  sum.chains_path = state_dir + "/chains.jsonl";
  *out = sum;
  if (checkpointed_to_us != nullptr) {
    *checkpointed_to_us = cp.next_begin.micros();
  }
  return true;
}

std::vector<SessionOutcome> RunSessions(const std::vector<SessionSpec>& specs,
                                        const analysis::CausalGraph& graph,
                                        const LiveOptions& opts,
                                        bool parallel) {
  // Compatibility shim over the fleet supervisor: one attempt per session
  // (the historical `domino live` contract — no retries, no deadlines, no
  // fleet-level budgets), N workers in parallel mode, 1 otherwise.
  FleetOptions fleet;
  fleet.workers = parallel ? static_cast<int>(specs.size()) : 1;
  fleet.max_attempts = 1;
  fleet.isolate = IsolationMode::kThread;
  FleetSupervisor sup(specs, graph, opts, fleet);
  return sup.Run().outcomes;
}

}  // namespace domino::runtime
