#include "domino/runtime/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#if !defined(_WIN32)
#include <cerrno>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace domino::runtime {

namespace {

constexpr const char* kHeader = "domino-live-checkpoint v1";

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Tokenising line parser with typed accessors; any failure poisons the
/// parse (checked once at the end).
class Reader {
 public:
  explicit Reader(std::istringstream& is) : is_(is) {}
  std::int64_t I() {
    std::int64_t v = 0;
    if (!(is_ >> v)) ok_ = false;
    return v;
  }
  std::uint64_t U() {
    std::uint64_t v = 0;
    if (!(is_ >> v)) ok_ = false;
    return v;
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  std::istringstream& is_;
  bool ok_ = true;
};

}  // namespace

std::string FormatCheckpoint(const LiveCheckpoint& cp) {
  std::ostringstream os;
  os << kHeader << "\n";
  // The fingerprint may contain spaces: it is the rest of the line.
  os << "fingerprint " << cp.fingerprint << "\n";
  os << "cursor " << cp.next_begin.micros() << " " << cp.ingest_limit.micros()
     << " " << cp.retention_cut.micros() << " " << cp.anchor.micros() << " "
     << cp.poll_count << "\n";
  os << "counters " << cp.windows << " " << cp.chains << " "
     << cp.insufficient << " " << cp.resets << " " << cp.checkpoints_written
     << " " << cp.chainlog_bytes << "\n";
  // Cadence origin for periodic checkpointing; writers always emit it with
  // the real value (>= 0), the -1 default only survives in files written
  // before the field existed.
  os << "cadence "
     << (cp.last_checkpoint_windows < 0 ? cp.windows
                                        : cp.last_checkpoint_windows)
     << "\n";
  os << "retention " << cp.retention_cuts << " " << cp.evicted_records << " "
     << cp.peak_retained_records << " " << cp.peak_retained_span.micros()
     << "\n";
  os << "ranking " << cp.windows_seen << " " << cp.windows_with_chain << " "
     << cp.insufficient_windows << "\n";
  for (const auto& [idx, v] : cp.cause) {
    os << "cause " << idx << " " << v.first << " " << v.second << "\n";
  }
  for (const auto& [idx, v] : cp.chain_tally) {
    os << "chain " << idx << " " << v.first << " " << v.second << "\n";
  }
  for (const auto& s : cp.shed) {
    os << "shed " << s.begin.micros() << " " << s.end.micros() << " "
       << s.windows << "\n";
  }
  for (std::size_t i = 0; i < cp.stalls.size(); ++i) {
    const StallState& s = cp.stalls[i];
    os << "stall " << i << " " << s.stall_events << " " << s.recoveries
       << " " << (s.stalled ? 1 : 0) << "\n";
  }
  for (std::size_t i = 0; i < cp.tails.size(); ++i) {
    const telemetry::TailCursor& t = cp.tails[i];
    os << "tail " << i << " " << t.offset << " " << t.abs_row << " "
       << (t.header_seen ? 1 : 0) << " " << t.watermark.micros() << " "
       << t.rows_total << " " << t.rows_kept << " " << t.rows_dropped
       << "\n";
  }
  std::string body = os.str();
  return body + "checksum " + Hex64(Fnv1a(body)) + "\n";
}

bool ParseCheckpoint(const std::string& text,
                     const std::string& expected_fingerprint,
                     LiveCheckpoint* cp, std::string* error,
                     CheckpointFailure* failure, const InputLimits& limits) {
  if (failure != nullptr) *failure = CheckpointFailure::kCorrupt;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (text.size() > limits.max_checkpoint_bytes) {
    return fail("checkpoint: " + std::to_string(text.size()) +
                " bytes exceeds the " +
                std::to_string(limits.max_checkpoint_bytes) +
                "-byte budget");
  }
  // Split off and verify the trailing checksum line first: a torn write
  // must be rejected before any field is trusted.
  std::size_t mark = text.rfind("checksum ");
  if (mark == std::string::npos || (mark != 0 && text[mark - 1] != '\n')) {
    return fail("checkpoint: missing checksum line");
  }
  std::string body = text.substr(0, mark);
  std::istringstream tail(text.substr(mark));
  std::string word, digest;
  tail >> word >> digest;
  if (digest != Hex64(Fnv1a(body))) {
    return fail("checkpoint: checksum mismatch (torn or corrupted write)");
  }
  // The checksum line must also be the *last* line: bytes after it are
  // outside the digest and would otherwise go unnoticed.
  if (text.substr(mark) != "checksum " + digest + "\n") {
    return fail("checkpoint: trailing bytes after checksum line");
  }

  LiveCheckpoint out;
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return fail("checkpoint: bad or unsupported version header");
  }
  bool ok = true;
  std::size_t entries = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (++entries > limits.max_checkpoint_entries) {
      return fail("checkpoint: more than " +
                  std::to_string(limits.max_checkpoint_entries) +
                  " entries");
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    Reader r(ls);
    if (key == "fingerprint") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      out.fingerprint = rest;
    } else if (key == "cursor") {
      out.next_begin = Time{r.I()};
      out.ingest_limit = Time{r.I()};
      out.retention_cut = Time{r.I()};
      out.anchor = Time{r.I()};
      out.poll_count = r.I();
      ok = ok && r.ok();
    } else if (key == "counters") {
      out.windows = r.I();
      out.chains = r.I();
      out.insufficient = r.I();
      out.resets = r.I();
      out.checkpoints_written = r.I();
      out.chainlog_bytes = r.U();
      ok = ok && r.ok();
    } else if (key == "cadence") {
      out.last_checkpoint_windows = r.I();
      ok = ok && r.ok() && out.last_checkpoint_windows >= 0;
    } else if (key == "retention") {
      out.retention_cuts = r.I();
      out.evicted_records = r.U();
      out.peak_retained_records = r.U();
      out.peak_retained_span = Duration{r.I()};
      ok = ok && r.ok();
    } else if (key == "ranking") {
      out.windows_seen = r.I();
      out.windows_with_chain = r.I();
      out.insufficient_windows = r.I();
      ok = ok && r.ok();
    } else if (key == "cause") {
      int idx = static_cast<int>(r.I());
      long a = r.I(), w = r.I();
      ok = ok && r.ok();
      out.cause[idx] = {a, w};
    } else if (key == "chain") {
      int idx = static_cast<int>(r.I());
      long c = r.I(), i = r.I();
      ok = ok && r.ok();
      out.chain_tally[idx] = {c, i};
    } else if (key == "shed") {
      ShedRange s;
      s.begin = Time{r.I()};
      s.end = Time{r.I()};
      s.windows = r.I();
      ok = ok && r.ok();
      out.shed.push_back(s);
    } else if (key == "stall") {
      std::size_t i = static_cast<std::size_t>(r.I());
      StallState s;
      s.stall_events = r.I();
      s.recoveries = r.I();
      s.stalled = r.I() != 0;
      ok = ok && r.ok() && i < out.stalls.size();
      if (i < out.stalls.size()) out.stalls[i] = s;
    } else if (key == "tail") {
      std::size_t i = static_cast<std::size_t>(r.I());
      telemetry::TailCursor t;
      t.offset = static_cast<std::size_t>(r.U());
      t.abs_row = static_cast<std::size_t>(r.U());
      t.header_seen = r.I() != 0;
      t.watermark = Time{r.I()};
      t.rows_total = static_cast<std::size_t>(r.U());
      t.rows_kept = static_cast<std::size_t>(r.U());
      t.rows_dropped = static_cast<std::size_t>(r.U());
      ok = ok && r.ok() && i < out.tails.size();
      if (i < out.tails.size()) out.tails[i] = t;
    } else {
      // Unknown keys are an error: the checksum already guarantees the
      // bytes are exactly what a writer produced, so this is a version
      // skew we must not silently half-apply.
      return fail("checkpoint: unknown key '" + key + "'");
    }
  }
  if (!ok) return fail("checkpoint: malformed field");
  if (!expected_fingerprint.empty() &&
      out.fingerprint != expected_fingerprint) {
    if (failure != nullptr) *failure = CheckpointFailure::kFingerprintMismatch;
    return fail("checkpoint: fingerprint mismatch (config or engine "
                "changed since the checkpoint was written)");
  }
  *cp = std::move(out);
  if (failure != nullptr) *failure = CheckpointFailure::kNone;
  return true;
}

bool SaveCheckpoint(const LiveCheckpoint& cp, const std::string& path,
                    DiskFaultInjector* fault) {
  // Durability, not just atomicity: temp + rename alone survives SIGKILL
  // but not power loss — the rename can hit the journal before the data
  // blocks do, leaving a correctly-named empty/torn file after the crash.
  // So: write temp, fsync the temp *file*, rename, then fsync the
  // *directory* so the rename itself is durable. Any failure before the
  // rename leaves the previous checkpoint untouched (the API contract).
  // The staging name carries a process-unique suffix so a fenced zombie and
  // the box that stole its lease can never tear each other's temp file while
  // racing to publish the same path (diskfault.h, AtomicTempSuffix).
  const std::string tmp = path + AtomicTempSuffix();
  const std::string body = FormatCheckpoint(cp);
  // Deterministic environmental-fault injection: ENOSPC/EIO fail the save
  // before any bytes land; a short write persists half the temp file and
  // leaves it torn on disk (the rename never happens, so the previous
  // checkpoint survives — and a later load of the torn temp, were it ever
  // renamed, would fail its checksum).
  std::size_t cap = body.size();
  int injected = 0;
  if (fault != nullptr) injected = fault->OnWrite(body.size(), &cap);
  if (injected != 0 && cap == body.size()) return false;
#if defined(_WIN32)
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(body.data(), static_cast<std::streamsize>(cap));
    f.flush();
    if (!f) return false;
  }
  if (injected != 0) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
#else
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < cap) {
    const ssize_t n = ::write(fd, body.data() + off, cap - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (injected != 0) {
    // Injected short write: keep the torn temp file for postmortems.
    ::close(fd);
    return false;
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Directory fsync makes the rename durable. Best-effort: some
  // filesystems refuse O_DIRECTORY fsync, and by this point the new
  // checkpoint is already valid-or-previous under SIGKILL either way.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return true;
#endif
}

bool LoadCheckpoint(const std::string& path,
                    const std::string& expected_fingerprint,
                    LiveCheckpoint* cp, std::string* error,
                    CheckpointFailure* failure, const InputLimits& limits) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) error->clear();
    if (failure != nullptr) *failure = CheckpointFailure::kMissing;
    return false;
  }
  // Size-check before slurping: a multi-GB file at the checkpoint path is
  // garbage (real checkpoints are a few KB) and must not be read into
  // memory just to fail its checksum.
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  if (size < 0 ||
      static_cast<std::uint64_t>(size) > limits.max_checkpoint_bytes) {
    if (error != nullptr) {
      *error = "checkpoint: file is " + std::to_string(size) +
               " bytes; the budget is " +
               std::to_string(limits.max_checkpoint_bytes);
    }
    if (failure != nullptr) *failure = CheckpointFailure::kCorrupt;
    return false;
  }
  f.seekg(0);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseCheckpoint(buf.str(), expected_fingerprint, cp, error, failure,
                         limits);
}

}  // namespace domino::runtime
