// Fault-domain fleet supervision — the `domino serve` runtime.
//
// One analysis box watches a fleet of cells: M session directories, far
// more than the machine has cores or memory for all at once. The
// FleetSupervisor runs them over a bounded pool of K shared-nothing
// workers, treating every session as an isolated *fault domain*:
//
//  * Retry from checkpoint. A failed session is re-queued with a
//    deterministic capped exponential backoff and resumes from its last
//    good checkpoint (the PR-4 kill/resume guarantee: the retried run's
//    chains.jsonl is byte-identical to an undisturbed one). After
//    `max_attempts` failures the session is quarantined — recorded with
//    its attempt count and partial progress, never retried again, never
//    allowed to wedge a worker forever.
//
//  * Wall-clock deadlines. The per-stream watchdog (watchdog.h) works in
//    trace time and cannot see a session that stops consuming wall time
//    productively (a wedged filesystem, a live feed that never ends). A
//    fleet-level `session_deadline` cancels such an attempt — cooperative
//    cancel token in thread isolation, SIGKILL in process isolation — and
//    the cancel escalates into the same retry/backoff/quarantine path.
//
//  * Admission control & backpressure. `global_backlog_windows` is a
//    fleet-wide in-flight window budget, divided over the K workers and
//    intersected with per-tenant and per-session budgets; each admitted
//    session runs with the resulting `max_backlog_windows`, so overload
//    sheds windows as explicit "degraded" ranges (live.h backpressure)
//    instead of OOMing the box. Per-tenant InputLimits bound what any one
//    tenant's hostile or bloated dataset may allocate.
//
//  * Crash containment. In `kProcess` isolation each attempt runs in a
//    forked child executing `<exec_path> live <dir> ...`; a SIGSEGV or
//    SIGKILL is recorded (exit status / signal in SessionOutcome) and
//    retried from the checkpoint without taking down the fleet. Thread
//    isolation is cheaper but shares one address space — a real crash
//    there kills everything, which is exactly the tradeoff documented in
//    DESIGN.md §13.
//
// Determinism: outcomes are reported in spec order whatever the worker
// interleaving, all analysis outputs are pure functions of file content
// (live.h), and BuildFleetReportJson contains only wall-clock-free fields
// — two runs over the same datasets and fault schedule are byte-identical.
// Wall-clock session latency (p50/p99) appears in the *text* report only.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/diskfault.h"
#include "common/parse.h"
#include "domino/graph.h"
#include "domino/runtime/supervisor.h"

namespace domino::runtime {

/// How a session attempt is executed.
enum class IsolationMode {
  kThread,   ///< Attempt runs on the worker thread (shared address space).
  kProcess,  ///< Attempt runs in a forked+exec'd child (crash containment).
};

/// Resource budget for one tenant (SessionSpec::tenant). Zero/unset fields
/// inherit the fleet-wide defaults.
struct TenantBudget {
  /// In-flight window budget shared by this tenant's sessions (divided
  /// evenly across them). 0 = no tenant cap.
  long backlog_windows = 0;
  /// Attempt budget override for this tenant's sessions. 0 = inherit.
  int max_attempts = 0;
  /// Parse/ingest resource budgets for this tenant's datasets.
  InputLimits input{};
  /// Whether `input` above overrides the fleet-wide InputLimits.
  bool has_input = false;
};

/// Deterministic chaos hooks for one session (testing / run_fleet.sh).
/// All fire on a *fresh* (non-resumed) run only, so a retried attempt
/// resumes from the checkpoint and completes — see LiveOptions.
struct SessionChaos {
  long crash_after = 0;  ///< _Exit(137) after Nth checkpoint (process
                         ///< isolation; degrades to fail_after in threads).
  long fail_after = 0;   ///< Throw after Nth checkpoint.
  long wedge_after = 0;  ///< Stop progressing after Nth checkpoint.
  /// Environmental fault: fail the session's Nth guarded durability write
  /// (checkpoint/report) with ENOSPC/EIO/a short write (diskfault.h). The
  /// failed write escalates to an attempt failure — retry/quarantine path.
  DiskFaultSpec disk{};
};

/// Pre-recorded state for one session, used when a restarted daemon seeds
/// its supervisor from a fleet manifest (daemon.h). Parallel to the spec
/// vector. A terminal seed's outcome is reported verbatim without re-running
/// the session; a non-terminal seed pre-loads the attempt counter so the
/// resumed run's final attempt counts match an undisturbed run's.
struct SessionSeed {
  bool terminal = false;
  int attempts = 0;
  SessionOutcome outcome;  ///< Meaningful when terminal.
};

struct FleetOptions {
  /// Worker pool size. 0 = min(#sessions, hardware concurrency).
  int workers = 0;
  /// Per-session attempt budget; quarantine after exhaustion. Must be >=1.
  int max_attempts = 3;
  /// Retry backoff: attempt n+1 starts backoff_ms * 2^(n-1) ms after
  /// attempt n failed, capped at backoff_cap_ms.
  long backoff_ms = 200;
  long backoff_cap_ms = 5'000;
  /// Wall-clock budget per attempt; exceeded = cancel-and-retry. 0 = off.
  double session_deadline_s = 0;
  /// Fleet-wide in-flight window-backlog budget, divided over the workers
  /// and intersected with per-session / per-tenant budgets. 0 = off.
  long global_backlog_windows = 0;
  IsolationMode isolate = IsolationMode::kThread;
  /// Binary executed for process isolation (the `domino` CLI). Required
  /// when isolate == kProcess.
  std::string exec_path;
  /// Extra argv appended to every process-isolation child command (the CLI
  /// forwards its own detector/live flags here so child fingerprints match
  /// across attempts). The supervisor itself appends the per-session flags:
  /// --state, --max-backlog, --max-records and the chaos hooks.
  std::vector<std::string> child_args;
  /// Per-tenant budgets, keyed by SessionSpec::tenant ("" = untenanted).
  std::map<std::string, TenantBudget> tenants;
  /// Per-session chaos hooks, parallel to the spec vector (may be shorter
  /// or empty = no chaos).
  std::vector<SessionChaos> chaos;
  /// Manifest seeds, parallel to the spec vector (may be shorter or empty
  /// = every session starts cold). See SessionSeed.
  std::vector<SessionSeed> seeds;
  /// Daemon mode: Run() keeps the pool alive for sessions admitted later
  /// via AddSessions() and terminates only after NoMoreSessions() (or a
  /// drain). Also uncaps the worker count from the *initial* session count,
  /// since more sessions may arrive.
  bool dynamic = false;
  /// Delete a session's checkpoint once it completes successfully (its
  /// report and chain log remain). Quarantined sessions always keep theirs
  /// for postmortem. Off by default: standalone `domino live` documents
  /// resume-across-dataset-growth, which needs the final checkpoint.
  bool gc_checkpoints = false;
  /// Grace period between SIGTERM and SIGKILL for process-isolation
  /// children during a drain.
  long drain_grace_ms = 5'000;
  /// Suppress per-attempt progress lines on stderr.
  bool quiet = true;

  // -- Sharded fleet hooks (shard.h; all optional) --------------------------

  /// Maps a dataset to its lease binding for attempt fencing. Returning
  /// true fills the lease dir + fencing token the attempt must prove before
  /// every durable write (LiveOptions::fence_lease_dir / fence_token, or
  /// --fence-lease/--fence-token on a process-isolation child). Returning
  /// false runs the attempt unfenced. Called per attempt, so a re-claimed
  /// session carries its fresh token.
  std::function<bool(const std::string& dataset_dir, std::string* lease_dir,
                     std::uint64_t* token)>
      shard_binding;
  /// Invoked (outside all supervisor locks) right after a session reaches a
  /// terminal state — the daemon publishes the shard done marker and
  /// releases the lease here.
  std::function<void(const SessionSpec&, const SessionOutcome&)> on_terminal;
  /// Extra gate on checkpoint GC: deletion happens only if this returns
  /// true (shard mode: we still hold an unfenced lease on the session).
  /// Null = GC ungated.
  std::function<bool(const SessionSpec&)> gc_guard;
};

struct FleetReport {
  std::vector<SessionOutcome> outcomes;  ///< Spec order, always complete.
  int workers = 0;
  int max_attempts = 0;
  long global_backlog_windows = 0;
  IsolationMode isolate = IsolationMode::kThread;

  // Aggregates (derived from outcomes; wall-clock-free).
  long completed = 0;    ///< ok sessions.
  long recovered = 0;    ///< ok after >1 attempt.
  long quarantined = 0;  ///< attempt budget exhausted.
  long suspended = 0;    ///< drained mid-run (resumable via manifest).
  long fenced = 0;       ///< lease stolen mid-attempt (finished elsewhere).
  bool drained = false;  ///< The run ended because of a drain request.
  long total_attempts = 0;
  long total_windows = 0;
  long total_chains = 0;
  long total_shed_windows = 0;

  /// End-to-end wall-clock latency per session (first admission to final
  /// outcome, backoff included), spec order. Text report only — never part
  /// of the byte-compared JSON.
  std::vector<double> session_latency_s;
};

/// Deterministic backoff schedule: delay before attempt `next_attempt`
/// (2-based; the first retry). base * 2^(next_attempt-2), capped.
long BackoffDelayMs(int next_attempt, long base_ms, long cap_ms);

/// The admission-control budget for one session: the smallest non-zero of
/// the session's own budget, the global budget's per-worker share, and the
/// tenant budget's per-session share. 0 = unlimited (all inputs 0).
long EffectiveBacklogWindows(long session_budget, long global_budget,
                             int workers, long tenant_budget,
                             int tenant_sessions);

/// Nearest-rank percentile (p in [0,100]) of a latency sample; 0 on empty.
double LatencyPercentile(std::vector<double> samples, double p);

/// Human-readable fleet summary, wall-clock latencies included.
std::string FormatFleetReportText(const FleetReport& report);

/// Stable machine-readable report. Contains only wall-clock-free fields:
/// byte-identical across reruns over the same datasets + fault schedule.
std::string BuildFleetReportJson(const FleetReport& report);

class FleetSupervisor {
 public:
  /// `graph` and `live` are the shared per-session configuration; every
  /// attempt gets its own copies (shared-nothing). Throws std::invalid_-
  /// argument on an unusable FleetOptions (process isolation without an
  /// exec path, max_attempts < 1).
  FleetSupervisor(std::vector<SessionSpec> specs,
                  analysis::CausalGraph graph, LiveOptions live,
                  FleetOptions fleet);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Runs every session to a terminal state (completed, quarantined, or —
  /// under a drain — suspended) and returns the report. Never throws for
  /// per-session failures; runs once per supervisor instance. With
  /// FleetOptions::dynamic the pool stays alive for AddSessions() arrivals
  /// until NoMoreSessions() or RequestDrain().
  FleetReport Run();

  /// Admit more sessions through the normal budget path while Run() is in
  /// flight (or before it starts). `chaos` is parallel to `specs` (may be
  /// shorter/empty). Ignored after a drain has begun. Thread-safe.
  void AddSessions(std::vector<SessionSpec> specs,
                   std::vector<SessionChaos> chaos = {});

  /// Declares that no further AddSessions() calls will come; a dynamic
  /// Run() may then terminate once every known session is terminal.
  /// Thread-safe.
  void NoMoreSessions();

  /// Graceful drain: stop starting attempts, ask in-flight attempts to
  /// checkpoint and stop (drain token in thread isolation, SIGTERM to
  /// process-isolation children), and mark everything still open as
  /// suspended. Run() then returns. Thread-safe, idempotent.
  void RequestDrain();

  /// Escalation for a drain that outlives its grace period: flips every
  /// worker's cancel token so wedged thread-isolation attempts abort (the
  /// session still resumes from its last periodic checkpoint). Process
  /// children are SIGKILLed by their own grace timer. Thread-safe.
  void CancelInFlight();

  /// Reload retry/deadline tunables (SIGHUP path). Zero/negative fields
  /// keep their current value. Sessions whose tenant overrides
  /// max_attempts keep the override. Thread-safe.
  void UpdateTunables(int max_attempts, long backoff_ms, long backoff_cap_ms,
                      double session_deadline_s);

  /// Point-in-time health counters for the fleet_status.json liveness
  /// file. Thread-safe.
  struct Status {
    long known = 0;        ///< Sessions ever admitted (incl. seeded ones).
    long active = 0;       ///< Attempts running right now.
    long pending = 0;      ///< Queued (first attempt or backoff).
    long retrying = 0;     ///< Queued sessions with >= 1 failed attempt.
    long completed = 0;
    long quarantined = 0;
    long suspended = 0;
    long fenced = 0;           ///< Sessions fenced off to another box.
    long failed_attempts = 0;  ///< Attempt failures observed (all causes).
    long total_windows = 0;    ///< Windows analysed by terminal sessions.
    long total_chains = 0;
    long total_shed_windows = 0;
    bool draining = false;
    /// State dirs of sessions currently open and admitted — the liveness
    /// writer stats their checkpoints for a last-checkpoint age.
    std::vector<std::string> open_state_dirs;
  };
  [[nodiscard]] Status Snapshot() const;

  /// Resolved pool size (after the 0 = auto default).
  [[nodiscard]] int workers() const { return workers_; }

  /// The effective LiveOptions session `idx` runs with (admission budgets
  /// and chaos hooks applied) — exposed for tests.
  [[nodiscard]] const LiveOptions& session_options(std::size_t idx) const;

 private:
  struct Impl;
  Impl* impl_;
  int workers_ = 0;
};

}  // namespace domino::runtime
