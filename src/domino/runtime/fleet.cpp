#include "domino/runtime/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "domino/report.h"
#include "domino/runtime/live.h"

#if !defined(_WIN32)
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace domino::runtime {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

long BackoffDelayMs(int next_attempt, long base_ms, long cap_ms) {
  if (next_attempt <= 1 || base_ms <= 0) return 0;
  long delay = base_ms;
  // next_attempt == 2 is the first retry: base * 2^0.
  for (int i = 2; i < next_attempt; ++i) {
    if (cap_ms > 0 && delay >= cap_ms) break;
    if (delay > std::numeric_limits<long>::max() / 2) {
      delay = std::numeric_limits<long>::max();
      break;
    }
    delay *= 2;
  }
  if (cap_ms > 0) delay = std::min(delay, cap_ms);
  return delay;
}

long EffectiveBacklogWindows(long session_budget, long global_budget,
                             int workers, long tenant_budget,
                             int tenant_sessions) {
  // The shares are fixed at session setup (K workers, the tenant's session
  // count in the spec list) — never derived from runtime concurrency — so
  // the budget a session runs with, and therefore what it sheds, is a pure
  // function of the fleet configuration.
  long best = 0;
  auto consider = [&best](long budget) {
    if (budget <= 0) return;
    if (best == 0 || budget < best) best = budget;
  };
  consider(session_budget);
  if (global_budget > 0) {
    consider(std::max(1L, global_budget / std::max(1, workers)));
  }
  if (tenant_budget > 0) {
    consider(std::max(1L, tenant_budget / std::max(1, tenant_sessions)));
  }
  return best;
}

double LatencyPercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(clamped / 100.0 * n));
  if (rank > 0) --rank;
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

namespace {

const char* IsolateName(IsolationMode m) {
  return m == IsolationMode::kProcess ? "process" : "thread";
}

/// What one attempt of one session produced.
struct AttemptResult {
  bool ok = false;
  bool cancelled = false;  ///< The wall-clock deadline fired.
  std::string error;
  LiveSummary summary;  ///< Valid when ok (thread isolation only; process
                        ///< isolation reconstructs from the checkpoint).
  int exit_code = -1;
  int term_signal = 0;
};

}  // namespace

struct FleetSupervisor::Impl {
  std::vector<SessionSpec> specs;  ///< state_dir resolved, never empty.
  analysis::CausalGraph graph;
  FleetOptions fleet;
  std::vector<LiveOptions> session_opts;
  std::vector<int> session_max_attempts;
  int workers = 0;
  bool ran = false;

  struct SessionState {
    int attempts = 0;
    bool deadline_exceeded = false;
    bool admitted = false;
    Clock::time_point admitted_at{};
    double latency_s = 0;
    SessionOutcome outcome;
  };
  std::vector<SessionState> state;

  struct Task {
    std::size_t idx = 0;
    Clock::time_point not_before{};
  };
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Task> queue;
  std::size_t open_sessions = 0;  ///< Sessions not yet terminal.
  bool done = false;

  /// Per-worker deadline slot, armed around each thread-isolation attempt
  /// and polled by the monitor thread. One attempt per worker at a time,
  /// so the worker's cancel token can be handed to the runner directly.
  struct WorkerSlot {
    std::atomic<bool> cancel{false};
    std::atomic<bool> armed{false};
    std::atomic<long long> deadline_ms{0};  ///< Clock epoch, milliseconds.
  };
  std::vector<std::unique_ptr<WorkerSlot>> slots;
  std::atomic<bool> monitor_stop{false};

  void WorkerLoop(int worker_id);
  AttemptResult RunAttemptThread(std::size_t idx, WorkerSlot& slot);
  AttemptResult RunAttemptProcess(std::size_t idx);
  void MonitorLoop();
  void Note(const char* fmt, const std::string& dataset,
            const std::string& detail) const;
};

void FleetSupervisor::Impl::Note(const char* fmt, const std::string& dataset,
                                 const std::string& detail) const {
  if (fleet.quiet) return;
  std::fprintf(stderr, fmt, dataset.c_str(), detail.c_str());
}

FleetSupervisor::FleetSupervisor(std::vector<SessionSpec> specs,
                                 analysis::CausalGraph graph,
                                 LiveOptions live, FleetOptions fleet)
    : impl_(new Impl) {
  if (fleet.max_attempts < 1) {
    delete impl_;
    throw std::invalid_argument("fleet: max_attempts must be >= 1");
  }
  if (fleet.isolate == IsolationMode::kProcess && fleet.exec_path.empty()) {
    delete impl_;
    throw std::invalid_argument(
        "fleet: process isolation needs an exec path");
  }
#if defined(_WIN32)
  if (fleet.isolate == IsolationMode::kProcess) {
    delete impl_;
    throw std::invalid_argument(
        "fleet: process isolation is not supported on this platform");
  }
#endif
  for (SessionSpec& s : specs) {
    if (s.state_dir.empty()) s.state_dir = DefaultStateDir(s.dataset_dir);
  }
  const auto hw = std::thread::hardware_concurrency();
  int workers = fleet.workers > 0
                    ? fleet.workers
                    : static_cast<int>(std::max(1u, hw));
  workers = std::max(
      1, std::min<int>(workers, static_cast<int>(
                                    std::max<std::size_t>(1, specs.size()))));
  workers_ = workers;

  // Tenant session counts, for the per-tenant budget shares.
  std::map<std::string, int> tenant_sessions;
  for (const SessionSpec& s : specs) ++tenant_sessions[s.tenant];

  impl_->graph = std::move(graph);
  impl_->workers = workers;
  impl_->session_opts.reserve(specs.size());
  impl_->session_max_attempts.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    LiveOptions o = live;
    const TenantBudget* tb = nullptr;
    if (auto it = fleet.tenants.find(specs[i].tenant);
        it != fleet.tenants.end()) {
      tb = &it->second;
    }
    o.max_backlog_windows = EffectiveBacklogWindows(
        live.max_backlog_windows, fleet.global_backlog_windows, workers,
        tb != nullptr ? tb->backlog_windows : 0,
        tenant_sessions[specs[i].tenant]);
    if (tb != nullptr && tb->has_input) o.input = tb->input;
    if (i < fleet.chaos.size()) {
      const SessionChaos& c = fleet.chaos[i];
      o.chaos_crash_after = c.crash_after;
      o.chaos_fail_after = c.fail_after;
      o.chaos_wedge_after = c.wedge_after;
      if (fleet.isolate == IsolationMode::kThread &&
          o.chaos_crash_after > 0) {
        // A real _Exit would take the whole fleet down with it, which is
        // the documented thread-isolation tradeoff — so in thread mode the
        // crash hook degrades to the fail hook and one --chaos spec drives
        // both isolation modes. The degrade applies only to fleet-scheduled
        // chaos: crash hooks already baked into the shared LiveOptions are
        // caller-owned (`domino live --chaos-crash` in a process-isolation
        // child IS the fault domain and must really _Exit).
        o.chaos_fail_after = o.chaos_fail_after > 0
                                 ? std::min(o.chaos_fail_after,
                                            o.chaos_crash_after)
                                 : o.chaos_crash_after;
        o.chaos_crash_after = 0;
      }
    }
    impl_->session_opts.push_back(std::move(o));
    impl_->session_max_attempts.push_back(
        tb != nullptr && tb->max_attempts > 0 ? tb->max_attempts
                                              : fleet.max_attempts);
  }
  impl_->specs = std::move(specs);
  impl_->fleet = std::move(fleet);
}

FleetSupervisor::~FleetSupervisor() { delete impl_; }

const LiveOptions& FleetSupervisor::session_options(std::size_t idx) const {
  return impl_->session_opts.at(idx);
}

AttemptResult FleetSupervisor::Impl::RunAttemptThread(std::size_t idx,
                                                      WorkerSlot& slot) {
  AttemptResult res;
  slot.cancel.store(false, std::memory_order_relaxed);
  if (fleet.session_deadline_s > 0) {
    const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    slot.deadline_ms.store(
        now_ms + static_cast<long long>(fleet.session_deadline_s * 1000.0),
        std::memory_order_relaxed);
    slot.armed.store(true, std::memory_order_release);
  }
  LiveOptions o = session_opts[idx];
  o.cancel = &slot.cancel;
  try {
    LiveRunner runner(specs[idx].dataset_dir, specs[idx].state_dir, graph, o);
    res.summary = runner.Run();
    res.ok = true;
  } catch (const std::exception& e) {
    res.error = e.what();
  } catch (...) {
    res.error = "unknown error";
  }
  slot.armed.store(false, std::memory_order_release);
  res.cancelled = slot.cancel.load(std::memory_order_relaxed);
  return res;
}

AttemptResult FleetSupervisor::Impl::RunAttemptProcess(std::size_t idx) {
  AttemptResult res;
#if defined(_WIN32)
  res.error = "process isolation unsupported";
  return res;
#else
  const SessionSpec& spec = specs[idx];
  const LiveOptions& o = session_opts[idx];
  std::error_code ec;
  fs::create_directories(spec.state_dir, ec);

  // Child argv and the log path are fully materialised before fork():
  // between fork and exec in a multithreaded parent only async-signal-safe
  // calls are allowed (open/dup2/execv/_exit — no allocation).
  std::vector<std::string> args;
  args.push_back(fleet.exec_path);
  args.push_back("live");
  args.push_back(spec.dataset_dir);
  args.push_back("--state");
  args.push_back(spec.state_dir);
  args.push_back("--quiet");
  if (o.max_backlog_windows > 0) {
    args.push_back("--max-backlog");
    args.push_back(std::to_string(o.max_backlog_windows));
  }
  if (o.chaos_crash_after > 0) {
    args.push_back("--chaos-crash");
    args.push_back(std::to_string(o.chaos_crash_after));
  }
  if (o.chaos_fail_after > 0) {
    args.push_back("--chaos-fail");
    args.push_back(std::to_string(o.chaos_fail_after));
  }
  if (o.chaos_wedge_after > 0) {
    args.push_back("--chaos-wedge");
    args.push_back(std::to_string(o.chaos_wedge_after));
  }
  args.push_back("--max-records");
  args.push_back(std::to_string(o.input.max_records));
  for (const std::string& a : fleet.child_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const std::string log_path = spec.state_dir + "/child.log";

  const pid_t pid = ::fork();
  if (pid < 0) {
    res.error = "fork failed";
    return res;
  }
  if (pid == 0) {
    // Child: stdout/stderr to the per-session log, then become `domino
    // live`. Async-signal-safe calls only until execv.
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, 1);
      ::dup2(log_fd, 2);
      if (log_fd > 2) ::close(log_fd);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  const bool have_deadline = fleet.session_deadline_s > 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(static_cast<long long>(
                         fleet.session_deadline_s * 1000.0));
  int status = 0;
  bool killed = false;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      res.error = "waitpid failed";
      return res;
    }
    if (!killed && have_deadline && Clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      killed = true;
      res.cancelled = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  if (WIFEXITED(status)) {
    res.exit_code = WEXITSTATUS(status);
    if (res.exit_code == 0) {
      res.ok = true;
    } else {
      res.error = "child exited with code " + std::to_string(res.exit_code);
    }
  } else if (WIFSIGNALED(status)) {
    res.term_signal = WTERMSIG(status);
    res.error = killed ? "live: cancelled (session deadline exceeded)"
                       : "child killed by signal " +
                             std::to_string(res.term_signal);
  } else {
    res.error = "child ended abnormally";
  }
  return res;
#endif
}

void FleetSupervisor::Impl::WorkerLoop(int worker_id) {
  WorkerSlot& slot = *slots[static_cast<std::size_t>(worker_id)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu);
      for (;;) {
        if (done) return;
        const auto now = Clock::now();
        std::size_t best = queue.size();
        auto earliest = Clock::time_point::max();
        for (std::size_t q = 0; q < queue.size(); ++q) {
          if (queue[q].not_before <= now) {
            // Lowest session index wins among the eligible: the admission
            // order (and with it which sessions a scarce worker pool gets
            // to first) is spec order, not wake-up luck.
            if (best == queue.size() ||
                queue[q].idx < queue[best].idx) {
              best = q;
            }
          } else {
            earliest = std::min(earliest, queue[q].not_before);
          }
        }
        if (best < queue.size()) {
          task = queue[best];
          queue.erase(queue.begin() + static_cast<long>(best));
          break;
        }
        if (earliest == Clock::time_point::max()) {
          cv.wait(lk);
        } else {
          cv.wait_until(lk, earliest);
        }
      }
      SessionState& st = state[task.idx];
      if (!st.admitted) {
        st.admitted = true;
        st.admitted_at = Clock::now();
      }
      ++st.attempts;
    }

    const AttemptResult res =
        fleet.isolate == IsolationMode::kProcess
            ? RunAttemptProcess(task.idx)
            : RunAttemptThread(task.idx, slot);

    std::unique_lock<std::mutex> lk(mu);
    SessionState& st = state[task.idx];
    SessionOutcome& out = st.outcome;
    out.attempts = st.attempts;
    if (res.cancelled) st.deadline_exceeded = true;
    out.deadline_exceeded = st.deadline_exceeded;
    out.exit_code = res.exit_code;
    out.term_signal = res.term_signal;

    bool terminal = false;
    if (res.ok) {
      out.ok = true;
      out.error.clear();
      if (fleet.isolate == IsolationMode::kProcess) {
        // The child's summary died with the child; its final checkpoint
        // (written by FinishRun) carries the same progress counters.
        LiveSummary sum;
        std::int64_t to_us = 0;
        if (LoadProgressFromState(specs[task.idx].state_dir, &sum, &to_us)) {
          out.summary = sum;
          out.checkpointed_to_us = to_us;
        }
        out.summary.dataset_dir = specs[task.idx].dataset_dir;
        out.summary.resumed = st.attempts > 1;
        out.summary.report_path =
            specs[task.idx].state_dir + "/live_report.json";
      } else {
        out.summary = res.summary;
      }
      terminal = true;
    } else {
      out.error = res.error;
      const int budget = session_max_attempts[task.idx];
      if (st.attempts < budget) {
        const long delay = BackoffDelayMs(st.attempts + 1, fleet.backoff_ms,
                                          fleet.backoff_cap_ms);
        queue.push_back(Task{task.idx,
                             Clock::now() + std::chrono::milliseconds(delay)});
        Note("serve[%s]: attempt failed, retrying: %s\n",
             specs[task.idx].dataset_dir, res.error);
      } else {
        out.ok = false;
        out.quarantined = true;
        terminal = true;
        Note("serve[%s]: QUARANTINED: %s\n", specs[task.idx].dataset_dir,
             res.error);
      }
    }

    if (terminal) {
      st.latency_s =
          std::chrono::duration<double>(Clock::now() - st.admitted_at)
              .count();
      if (!out.ok || out.summary.checkpoints > 0) {
        // Best-effort partial/final progress from the last checkpoint (for
        // a failed session this is what the operator gets instead of
        // nothing — ISSUE 8 satellite 2).
        if (!out.ok) {
          LiveSummary sum;
          std::int64_t to_us = 0;
          if (LoadProgressFromState(specs[task.idx].state_dir, &sum,
                                    &to_us)) {
            sum.dataset_dir = specs[task.idx].dataset_dir;
            out.summary = sum;
            out.has_partial = true;
            out.checkpointed_to_us = to_us;
          }
        }
      }
      --open_sessions;
      if (open_sessions == 0) done = true;
    }
    cv.notify_all();
  }
}

void FleetSupervisor::Impl::MonitorLoop() {
  // Thread-isolation deadlines: poll every armed worker slot and flip its
  // cancel token once the wall-clock budget is spent. The runner notices
  // at its next poll boundary (or inside its wedge/sleep loops) and aborts
  // the attempt with a "cancelled" error, which escalates into the normal
  // retry/quarantine path.
  while (!monitor_stop.load(std::memory_order_acquire)) {
    const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    for (auto& slot : slots) {
      if (slot->armed.load(std::memory_order_acquire) &&
          now_ms >= slot->deadline_ms.load(std::memory_order_relaxed)) {
        slot->cancel.store(true, std::memory_order_relaxed);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

FleetReport FleetSupervisor::Run() {
  Impl& im = *impl_;
  if (im.ran) throw std::logic_error("fleet: Run() already called");
  im.ran = true;

  FleetReport report;
  report.workers = im.workers;
  report.max_attempts = im.fleet.max_attempts;
  report.global_backlog_windows = im.fleet.global_backlog_windows;
  report.isolate = im.fleet.isolate;
  if (im.specs.empty()) return report;

  im.state.resize(im.specs.size());
  for (std::size_t i = 0; i < im.specs.size(); ++i) {
    im.state[i].outcome.dataset_dir = im.specs[i].dataset_dir;
    im.state[i].outcome.tenant = im.specs[i].tenant;
    im.queue.push_back(Impl::Task{i, Clock::now()});
  }
  im.open_sessions = im.specs.size();

  im.slots.clear();
  for (int w = 0; w < im.workers; ++w) {
    im.slots.push_back(std::make_unique<Impl::WorkerSlot>());
  }
  std::thread monitor;
  if (im.fleet.isolate == IsolationMode::kThread &&
      im.fleet.session_deadline_s > 0) {
    monitor = std::thread([&im] { im.MonitorLoop(); });
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(im.workers));
  for (int w = 0; w < im.workers; ++w) {
    pool.emplace_back([&im, w] { im.WorkerLoop(w); });
  }
  for (std::thread& t : pool) t.join();
  im.monitor_stop.store(true, std::memory_order_release);
  if (monitor.joinable()) monitor.join();

  for (Impl::SessionState& st : im.state) {
    report.outcomes.push_back(std::move(st.outcome));
    report.session_latency_s.push_back(st.latency_s);
  }
  for (const SessionOutcome& o : report.outcomes) {
    report.total_attempts += o.attempts;
    if (o.ok) {
      ++report.completed;
      if (o.attempts > 1) ++report.recovered;
    }
    if (o.quarantined) ++report.quarantined;
    report.total_windows += o.summary.windows;
    report.total_chains += o.summary.chains;
    report.total_shed_windows += o.summary.shed_windows;
  }
  return report;
}

std::string FormatFleetReportText(const FleetReport& report) {
  std::ostringstream os;
  os << "fleet: " << report.outcomes.size() << " sessions over "
     << report.workers << " workers (" << IsolateName(report.isolate)
     << " isolation, max " << report.max_attempts << " attempts";
  if (report.global_backlog_windows > 0) {
    os << ", global backlog " << report.global_backlog_windows;
  }
  os << ")\n";
  os << "  completed " << report.completed << " (" << report.recovered
     << " recovered), quarantined " << report.quarantined << ", "
     << report.total_attempts << " attempts total\n";
  os << "  windows " << report.total_windows << ", chains "
     << report.total_chains << ", shed " << report.total_shed_windows
     << "\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "  session latency p50 %.3fs p99 %.3fs\n",
                LatencyPercentile(report.session_latency_s, 50),
                LatencyPercentile(report.session_latency_s, 99));
  os << buf;
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const SessionOutcome& o = report.outcomes[i];
    os << "  [" << i << "] "
       << (o.ok ? "ok         " : o.quarantined ? "QUARANTINED" : "failed   ")
       << " " << o.dataset_dir;
    if (!o.tenant.empty()) os << " tenant=" << o.tenant;
    os << " attempts=" << o.attempts;
    if (o.ok || o.has_partial) {
      os << " windows=" << o.summary.windows
         << " chains=" << o.summary.chains;
      if (o.summary.shed_windows > 0) os << " shed=" << o.summary.shed_windows;
      if (o.has_partial) os << " (partial, up to checkpoint)";
    }
    if (o.deadline_exceeded) os << " [deadline exceeded]";
    if (o.term_signal != 0) os << " [signal " << o.term_signal << "]";
    if (!o.error.empty()) os << "\n        error: " << o.error;
    os << "\n";
  }
  return os.str();
}

std::string BuildFleetReportJson(const FleetReport& report) {
  using analysis::JsonEscape;
  // Only wall-clock-free, schedule-invariant quantities: this document is
  // byte-compared between two runs of the same fleet command, whatever the
  // worker interleaving. (Notably absent: session latencies — those are
  // text-report only.)
  std::ostringstream os;
  os << "{\n";
  os << "  \"fleet\": {\"sessions\": " << report.outcomes.size()
     << ", \"workers\": " << report.workers
     << ", \"max_attempts\": " << report.max_attempts
     << ", \"global_backlog_windows\": " << report.global_backlog_windows
     << ", \"isolate\": \"" << IsolateName(report.isolate) << "\"},\n";
  os << "  \"counts\": {\"completed\": " << report.completed
     << ", \"recovered\": " << report.recovered
     << ", \"quarantined\": " << report.quarantined
     << ", \"total_attempts\": " << report.total_attempts << "},\n";
  os << "  \"progress\": {\"windows\": " << report.total_windows
     << ", \"chains\": " << report.total_chains
     << ", \"shed_windows\": " << report.total_shed_windows << "},\n";
  os << "  \"sessions\": [";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const SessionOutcome& o = report.outcomes[i];
    os << (i == 0 ? "" : ",") << "\n    {\"dataset\": \""
       << JsonEscape(o.dataset_dir) << "\", \"tenant\": \""
       << JsonEscape(o.tenant) << "\", \"ok\": " << (o.ok ? "true" : "false")
       << ", \"quarantined\": " << (o.quarantined ? "true" : "false")
       << ", \"deadline_exceeded\": "
       << (o.deadline_exceeded ? "true" : "false")
       << ", \"attempts\": " << o.attempts
       << ", \"exit_code\": " << o.exit_code
       << ", \"term_signal\": " << o.term_signal
       << ", \"partial\": " << (o.has_partial ? "true" : "false")
       << ", \"windows\": " << o.summary.windows
       << ", \"chains\": " << o.summary.chains
       << ", \"insufficient_chains\": " << o.summary.insufficient_chains
       << ", \"shed_windows\": " << o.summary.shed_windows
       << ", \"checkpoints\": " << o.summary.checkpoints
       << ", \"checkpointed_to_us\": " << o.checkpointed_to_us
       << ", \"error\": \"" << JsonEscape(o.error) << "\"}";
  }
  os << (report.outcomes.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace domino::runtime
