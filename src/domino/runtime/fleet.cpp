#include "domino/runtime/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "domino/report.h"
#include "domino/runtime/live.h"

#if !defined(_WIN32)
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace domino::runtime {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

long BackoffDelayMs(int next_attempt, long base_ms, long cap_ms) {
  if (next_attempt <= 1 || base_ms <= 0) return 0;
  long delay = base_ms;
  // next_attempt == 2 is the first retry: base * 2^0.
  for (int i = 2; i < next_attempt; ++i) {
    if (cap_ms > 0 && delay >= cap_ms) break;
    if (delay > std::numeric_limits<long>::max() / 2) {
      delay = std::numeric_limits<long>::max();
      break;
    }
    delay *= 2;
  }
  if (cap_ms > 0) delay = std::min(delay, cap_ms);
  return delay;
}

long EffectiveBacklogWindows(long session_budget, long global_budget,
                             int workers, long tenant_budget,
                             int tenant_sessions) {
  // The shares are fixed at session setup (K workers, the tenant's session
  // count in the spec list) — never derived from runtime concurrency — so
  // the budget a session runs with, and therefore what it sheds, is a pure
  // function of the fleet configuration.
  long best = 0;
  auto consider = [&best](long budget) {
    if (budget <= 0) return;
    if (best == 0 || budget < best) best = budget;
  };
  consider(session_budget);
  if (global_budget > 0) {
    consider(std::max(1L, global_budget / std::max(1, workers)));
  }
  if (tenant_budget > 0) {
    consider(std::max(1L, tenant_budget / std::max(1, tenant_sessions)));
  }
  return best;
}

double LatencyPercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(clamped / 100.0 * n));
  if (rank > 0) --rank;
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

namespace {

const char* IsolateName(IsolationMode m) {
  return m == IsolationMode::kProcess ? "process" : "thread";
}

/// What one attempt of one session produced.
struct AttemptResult {
  bool ok = false;
  bool cancelled = false;  ///< The wall-clock deadline fired.
  bool drained = false;    ///< The drain stopped this attempt (resumable).
  bool fenced = false;     ///< The session lease was stolen mid-attempt.
  std::string error;
  LiveSummary summary;  ///< Valid when ok (thread isolation only; process
                        ///< isolation reconstructs from the checkpoint).
  int exit_code = -1;
  int term_signal = 0;
};

}  // namespace

struct FleetSupervisor::Impl {
  std::vector<SessionSpec> specs;  ///< state_dir resolved.
  analysis::CausalGraph graph;
  FleetOptions fleet;
  LiveOptions live_base;  ///< Shared per-session config before budgets.
  std::vector<LiveOptions> session_opts;
  std::vector<int> session_max_attempts;
  /// Whether session i's attempt budget came from a tenant override (a
  /// SIGHUP tunables reload must not clobber those).
  std::vector<char> has_tenant_attempts;
  /// Tenant -> sessions admitted so far; the tenant backlog share of a
  /// dynamically admitted session uses the count at its admission time.
  std::map<std::string, int> tenant_sessions;
  int workers = 0;
  bool ran = false;

  struct SessionState {
    int attempts = 0;
    bool deadline_exceeded = false;
    bool admitted = false;
    bool terminal = false;
    Clock::time_point admitted_at{};
    double latency_s = 0;
    SessionOutcome outcome;
  };
  std::vector<SessionState> state;

  struct Task {
    std::size_t idx = 0;
    Clock::time_point not_before{};
  };
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Task> queue;
  std::size_t open_sessions = 0;  ///< Sessions not yet terminal.
  bool done = false;
  bool no_more = false;  ///< No further AddSessions() will come.
  long failed_attempts = 0;  ///< Attempt failures observed (all causes).

  /// Drain request: polled by the dequeue loop (stop starting attempts),
  /// the process-isolation waitpid loop (SIGTERM the child), and handed to
  /// thread-isolation runners as LiveOptions::drain.
  std::atomic<bool> drain{false};
  /// Tunables that attempt runners read without the mutex (SIGHUP reload).
  std::atomic<double> deadline_s{0};
  std::atomic<long> grace_ms{5'000};

  /// Per-worker deadline slot, armed around each thread-isolation attempt
  /// and polled by the monitor thread. One attempt per worker at a time,
  /// so the worker's cancel token can be handed to the runner directly.
  struct WorkerSlot {
    std::atomic<bool> cancel{false};
    std::atomic<bool> armed{false};
    std::atomic<long long> deadline_ms{0};  ///< Clock epoch, milliseconds.
  };
  std::vector<std::unique_ptr<WorkerSlot>> slots;
  std::atomic<bool> monitor_stop{false};

  void WorkerLoop(int worker_id);
  AttemptResult RunAttemptThread(std::size_t idx, WorkerSlot& slot);
  AttemptResult RunAttemptProcess(std::size_t idx);
  void MonitorLoop();
  /// Appends one session (options, budgets, state slot, queue entry).
  /// Caller holds `mu` (or is the constructor). `tenant_sessions` must
  /// already count the batch this spec belongs to.
  void SetupSession(SessionSpec spec, const SessionChaos* chaos,
                    const SessionSeed* seed);
  void Note(const char* fmt, const std::string& dataset,
            const std::string& detail) const;
};

void FleetSupervisor::Impl::Note(const char* fmt, const std::string& dataset,
                                 const std::string& detail) const {
  if (fleet.quiet) return;
  std::fprintf(stderr, fmt, dataset.c_str(), detail.c_str());
}

FleetSupervisor::FleetSupervisor(std::vector<SessionSpec> specs,
                                 analysis::CausalGraph graph,
                                 LiveOptions live, FleetOptions fleet)
    : impl_(new Impl) {
  if (fleet.max_attempts < 1) {
    delete impl_;
    throw std::invalid_argument("fleet: max_attempts must be >= 1");
  }
  if (fleet.isolate == IsolationMode::kProcess && fleet.exec_path.empty()) {
    delete impl_;
    throw std::invalid_argument(
        "fleet: process isolation needs an exec path");
  }
#if defined(_WIN32)
  if (fleet.isolate == IsolationMode::kProcess) {
    delete impl_;
    throw std::invalid_argument(
        "fleet: process isolation is not supported on this platform");
  }
#endif
  if (fleet.seeds.size() > specs.size()) {
    delete impl_;
    throw std::invalid_argument("fleet: more seeds than sessions");
  }
  for (SessionSpec& s : specs) {
    if (s.state_dir.empty()) s.state_dir = DefaultStateDir(s.dataset_dir);
  }
  const auto hw = std::thread::hardware_concurrency();
  int workers = fleet.workers > 0
                    ? fleet.workers
                    : static_cast<int>(std::max(1u, hw));
  if (!fleet.dynamic) {
    // Batch mode: no point in more workers than sessions. A dynamic fleet
    // keeps the requested pool — sessions it has not discovered yet will
    // need the extra workers.
    workers = std::max(
        1, std::min<int>(workers,
                         static_cast<int>(
                             std::max<std::size_t>(1, specs.size()))));
  }
  workers = std::max(1, workers);
  workers_ = workers;

  impl_->graph = std::move(graph);
  impl_->workers = workers;
  impl_->live_base = std::move(live);
  impl_->no_more = !fleet.dynamic;
  impl_->deadline_s.store(fleet.session_deadline_s,
                          std::memory_order_relaxed);
  impl_->grace_ms.store(std::max(0L, fleet.drain_grace_ms),
                        std::memory_order_relaxed);
  impl_->fleet = std::move(fleet);

  // Slots exist for the life of the supervisor (not just Run()) so
  // CancelInFlight() is safe whenever a daemon thread calls it.
  for (int w = 0; w < workers; ++w) {
    impl_->slots.push_back(std::make_unique<Impl::WorkerSlot>());
  }

  // Tenant session counts, for the per-tenant budget shares: the whole
  // initial batch counts before any session is set up (matching the
  // pre-daemon behaviour for static fleets).
  for (const SessionSpec& s : specs) ++impl_->tenant_sessions[s.tenant];
  impl_->session_opts.reserve(specs.size());
  impl_->session_max_attempts.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SessionChaos* c =
        i < impl_->fleet.chaos.size() ? &impl_->fleet.chaos[i] : nullptr;
    const SessionSeed* seed =
        i < impl_->fleet.seeds.size() ? &impl_->fleet.seeds[i] : nullptr;
    impl_->SetupSession(std::move(specs[i]), c, seed);
  }
}

void FleetSupervisor::Impl::SetupSession(SessionSpec spec,
                                         const SessionChaos* chaos,
                                         const SessionSeed* seed) {
  LiveOptions o = live_base;
  const TenantBudget* tb = nullptr;
  if (auto it = fleet.tenants.find(spec.tenant); it != fleet.tenants.end()) {
    tb = &it->second;
  }
  o.max_backlog_windows = EffectiveBacklogWindows(
      live_base.max_backlog_windows, fleet.global_backlog_windows, workers,
      tb != nullptr ? tb->backlog_windows : 0, tenant_sessions[spec.tenant]);
  if (tb != nullptr && tb->has_input) o.input = tb->input;
  if (chaos != nullptr) {
    o.chaos_crash_after = chaos->crash_after;
    o.chaos_fail_after = chaos->fail_after;
    o.chaos_wedge_after = chaos->wedge_after;
    o.disk_fault = chaos->disk;
    if (fleet.isolate == IsolationMode::kThread && o.chaos_crash_after > 0) {
      // A real _Exit would take the whole fleet down with it, which is
      // the documented thread-isolation tradeoff — so in thread mode the
      // crash hook degrades to the fail hook and one --chaos spec drives
      // both isolation modes. The degrade applies only to fleet-scheduled
      // chaos: crash hooks already baked into the shared LiveOptions are
      // caller-owned (`domino live --chaos-crash` in a process-isolation
      // child IS the fault domain and must really _Exit).
      o.chaos_fail_after =
          o.chaos_fail_after > 0
              ? std::min(o.chaos_fail_after, o.chaos_crash_after)
              : o.chaos_crash_after;
      o.chaos_crash_after = 0;
    }
  }
  session_opts.push_back(std::move(o));
  session_max_attempts.push_back(tb != nullptr && tb->max_attempts > 0
                                     ? tb->max_attempts
                                     : fleet.max_attempts);
  has_tenant_attempts.push_back(
      tb != nullptr && tb->max_attempts > 0 ? 1 : 0);

  const std::size_t idx = state.size();
  state.emplace_back();
  SessionState& st = state.back();
  if (seed != nullptr && seed->terminal) {
    // Manifest-restored terminal outcome: reported verbatim, never re-run
    // — this is what makes the restarted daemon's final report
    // byte-identical to an undisturbed run's.
    st.terminal = true;
    st.outcome = seed->outcome;
    st.attempts = seed->outcome.attempts;
    st.deadline_exceeded = seed->outcome.deadline_exceeded;
  } else {
    if (seed != nullptr) st.attempts = seed->attempts;
    queue.push_back(Task{idx, Clock::now()});
    ++open_sessions;
  }
  st.outcome.dataset_dir = spec.dataset_dir;
  st.outcome.tenant = spec.tenant;
  specs.push_back(std::move(spec));
}

FleetSupervisor::~FleetSupervisor() { delete impl_; }

const LiveOptions& FleetSupervisor::session_options(std::size_t idx) const {
  return impl_->session_opts.at(idx);
}

AttemptResult FleetSupervisor::Impl::RunAttemptThread(std::size_t idx,
                                                      WorkerSlot& slot) {
  AttemptResult res;
  slot.cancel.store(false, std::memory_order_relaxed);
  const double dl_s = deadline_s.load(std::memory_order_relaxed);
  if (dl_s > 0) {
    const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    slot.deadline_ms.store(now_ms + static_cast<long long>(dl_s * 1000.0),
                           std::memory_order_relaxed);
    slot.armed.store(true, std::memory_order_release);
  }
  LiveOptions o = session_opts[idx];
  o.cancel = &slot.cancel;
  o.drain = &drain;
  if (fleet.shard_binding) {
    // Fencing is bound per attempt, not per session: a lease re-claimed
    // after a takeover carries a fresh token.
    std::string lease_dir;
    std::uint64_t token = 0;
    if (fleet.shard_binding(specs[idx].dataset_dir, &lease_dir, &token)) {
      o.fence_lease_dir = lease_dir;
      o.fence_token = token;
    }
  }
  try {
    LiveRunner runner(specs[idx].dataset_dir, specs[idx].state_dir, graph, o);
    res.summary = runner.Run();
    if (res.summary.drained) {
      res.drained = true;
    } else {
      res.ok = true;
    }
  } catch (const std::exception& e) {
    res.error = e.what();
    res.fenced = res.error.rfind("fenced", 0) == 0;
  } catch (...) {
    res.error = "unknown error";
  }
  slot.armed.store(false, std::memory_order_release);
  res.cancelled = slot.cancel.load(std::memory_order_relaxed);
  return res;
}

AttemptResult FleetSupervisor::Impl::RunAttemptProcess(std::size_t idx) {
  AttemptResult res;
#if defined(_WIN32)
  res.error = "process isolation unsupported";
  return res;
#else
  const SessionSpec& spec = specs[idx];
  const LiveOptions& o = session_opts[idx];
  std::error_code ec;
  fs::create_directories(spec.state_dir, ec);

  // Child argv and the log path are fully materialised before fork():
  // between fork and exec in a multithreaded parent only async-signal-safe
  // calls are allowed (open/dup2/execv/_exit — no allocation).
  std::vector<std::string> args;
  args.push_back(fleet.exec_path);
  args.push_back("live");
  args.push_back(spec.dataset_dir);
  args.push_back("--state");
  args.push_back(spec.state_dir);
  args.push_back("--quiet");
  if (o.max_backlog_windows > 0) {
    args.push_back("--max-backlog");
    args.push_back(std::to_string(o.max_backlog_windows));
  }
  if (o.chaos_crash_after > 0) {
    args.push_back("--chaos-crash");
    args.push_back(std::to_string(o.chaos_crash_after));
  }
  if (o.chaos_fail_after > 0) {
    args.push_back("--chaos-fail");
    args.push_back(std::to_string(o.chaos_fail_after));
  }
  if (o.chaos_wedge_after > 0) {
    args.push_back("--chaos-wedge");
    args.push_back(std::to_string(o.chaos_wedge_after));
  }
  if (o.disk_fault.kind != DiskFaultSpec::Kind::kNone) {
    const char* kind =
        o.disk_fault.kind == DiskFaultSpec::Kind::kEnospc   ? "enospc"
        : o.disk_fault.kind == DiskFaultSpec::Kind::kEio    ? "eio"
        : o.disk_fault.kind == DiskFaultSpec::Kind::kRename ? "rename"
        : o.disk_fault.kind == DiskFaultSpec::Kind::kFsync  ? "fsync"
                                                            : "short";
    args.push_back("--chaos-disk");
    args.push_back(std::string(kind) + ":" +
                   std::to_string(o.disk_fault.at_write));
  }
  if (fleet.shard_binding) {
    std::string lease_dir;
    std::uint64_t token = 0;
    if (fleet.shard_binding(spec.dataset_dir, &lease_dir, &token)) {
      args.push_back("--fence-lease");
      args.push_back(lease_dir);
      args.push_back("--fence-token");
      args.push_back(std::to_string(token));
    }
  }
  args.push_back("--max-records");
  args.push_back(std::to_string(o.input.max_records));
  for (const std::string& a : fleet.child_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const std::string log_path = spec.state_dir + "/child.log";

  const pid_t pid = ::fork();
  if (pid < 0) {
    res.error = "fork failed";
    return res;
  }
  if (pid == 0) {
    // Child: stdout/stderr to the per-session log, then become `domino
    // live`. Async-signal-safe calls only until execv.
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, 1);
      ::dup2(log_fd, 2);
      if (log_fd > 2) ::close(log_fd);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  const double dl_s = deadline_s.load(std::memory_order_relaxed);
  const bool have_deadline = dl_s > 0;
  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(static_cast<long long>(dl_s * 1000.0));
  int status = 0;
  bool killed = false;
  bool termed = false;  ///< We SIGTERMed the child for a graceful drain.
  auto drain_kill_at = Clock::time_point::max();
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      res.error = "waitpid failed";
      return res;
    }
    const auto now = Clock::now();
    if (!termed && !killed && drain.load(std::memory_order_relaxed)) {
      // Graceful drain: SIGTERM asks the child to write a drain checkpoint
      // and exit 75 (EX_TEMPFAIL = resumable); SIGKILL after the grace
      // period covers wedged children — they resume from their last
      // periodic checkpoint instead.
      ::kill(pid, SIGTERM);
      termed = true;
      drain_kill_at = now + std::chrono::milliseconds(
                                grace_ms.load(std::memory_order_relaxed));
    }
    if (termed && !killed && now >= drain_kill_at) {
      ::kill(pid, SIGKILL);
      killed = true;
    }
    if (!termed && !killed && have_deadline && now >= deadline) {
      ::kill(pid, SIGKILL);
      killed = true;
      res.cancelled = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  if (WIFEXITED(status)) {
    res.exit_code = WEXITSTATUS(status);
    if (res.exit_code == 0) {
      res.ok = true;
    } else if (res.exit_code == 75) {
      // EX_TEMPFAIL: the child drained (whether we SIGTERMed it or the
      // operator's terminal delivered the signal to the whole group).
      res.drained = true;
    } else if (res.exit_code == 76) {
      // The child's fencing check fired: its lease was stolen and it
      // stopped without touching state (see CmdLive's exit contract).
      res.fenced = true;
      res.error = "fenced: session lease was stolen (child exit 76)";
    } else {
      res.error = "child exited with code " + std::to_string(res.exit_code);
    }
  } else if (WIFSIGNALED(status)) {
    res.term_signal = WTERMSIG(status);
    if (termed) {
      res.drained = true;
    } else {
      res.error = res.cancelled ? "live: cancelled (session deadline exceeded)"
                                : "child killed by signal " +
                                      std::to_string(res.term_signal);
    }
  } else {
    res.error = "child ended abnormally";
  }
  return res;
#endif
}

void FleetSupervisor::Impl::WorkerLoop(int worker_id) {
  WorkerSlot& slot = *slots[static_cast<std::size_t>(worker_id)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu);
      for (;;) {
        if (done) return;
        if (drain.load(std::memory_order_relaxed)) {
          // Drain: nothing queued gets another attempt. Suspend it all and
          // wait for the in-flight attempts (draining on other workers) to
          // settle. A queued suspension costs no attempt: the session never
          // started, so the restarted daemon re-queues it with the same
          // counter an undisturbed run would have had.
          for (const Task& t : queue) {
            SessionState& st = state[t.idx];
            if (st.terminal) continue;
            st.terminal = true;
            st.outcome.suspended = true;
            st.outcome.attempts = st.attempts;
            --open_sessions;
          }
          queue.clear();
          if (open_sessions == 0) {
            done = true;
            cv.notify_all();
            return;
          }
          cv.wait(lk);
          continue;
        }
        const auto now = Clock::now();
        std::size_t best = queue.size();
        auto earliest = Clock::time_point::max();
        for (std::size_t q = 0; q < queue.size(); ++q) {
          if (queue[q].not_before <= now) {
            // Lowest session index wins among the eligible: the admission
            // order (and with it which sessions a scarce worker pool gets
            // to first) is spec order, not wake-up luck.
            if (best == queue.size() ||
                queue[q].idx < queue[best].idx) {
              best = q;
            }
          } else {
            earliest = std::min(earliest, queue[q].not_before);
          }
        }
        if (best < queue.size()) {
          task = queue[best];
          queue.erase(queue.begin() + static_cast<long>(best));
          break;
        }
        if (earliest == Clock::time_point::max()) {
          cv.wait(lk);
        } else {
          cv.wait_until(lk, earliest);
        }
      }
      SessionState& st = state[task.idx];
      if (!st.admitted) {
        st.admitted = true;
        st.admitted_at = Clock::now();
      }
      ++st.attempts;
    }

    const AttemptResult res =
        fleet.isolate == IsolationMode::kProcess
            ? RunAttemptProcess(task.idx)
            : RunAttemptThread(task.idx, slot);

    std::unique_lock<std::mutex> lk(mu);
    const bool draining = drain.load(std::memory_order_relaxed);
    SessionState& st = state[task.idx];
    SessionOutcome& out = st.outcome;
    out.attempts = st.attempts;
    if (res.cancelled && !draining) st.deadline_exceeded = true;
    out.deadline_exceeded = st.deadline_exceeded;
    out.exit_code = res.exit_code;
    out.term_signal = res.term_signal;

    bool terminal = false;
    if (res.ok) {
      out.ok = true;
      out.error.clear();
      if (fleet.isolate == IsolationMode::kProcess) {
        // The child's summary died with the child; its final checkpoint
        // (written by FinishRun) carries the same progress counters.
        LiveSummary sum;
        std::int64_t to_us = 0;
        if (LoadProgressFromState(specs[task.idx].state_dir, &sum, &to_us)) {
          out.summary = sum;
          out.checkpointed_to_us = to_us;
        }
        out.summary.dataset_dir = specs[task.idx].dataset_dir;
        out.summary.resumed = st.attempts > 1;
        out.summary.report_path =
            specs[task.idx].state_dir + "/live_report.json";
      } else {
        out.summary = res.summary;
      }
      terminal = true;
    } else if (res.drained || (res.cancelled && draining)) {
      // The drain stopped this attempt (either the runner saw the drain
      // token and checkpointed, or the post-grace cancel/SIGKILL cut a
      // wedged one short). It was never a *failed* attempt: hand the
      // counter back so the restarted daemon's re-run consumes the attempt
      // number an undisturbed run would have used. (Chaos hooks fire on
      // fresh runs only, so the replayed attempt reproduces any fault the
      // interrupted one would have hit.)
      --st.attempts;
      out.attempts = st.attempts;
      out.suspended = true;
      out.error.clear();
      terminal = true;
    } else if (res.fenced) {
      // The session's lease was stolen mid-attempt: another box presumed
      // us dead and took over from our last checkpoint. Terminal here —
      // never retried (the work is finishing elsewhere), never counted as
      // a fleet failure, and the fencing check guarantees this attempt
      // published nothing after the loss.
      out.fenced = true;
      out.ok = false;
      out.error = res.error;
      terminal = true;
      Note("serve[%s]: FENCED (taken over by another box): %s\n",
           specs[task.idx].dataset_dir, res.error);
    } else {
      out.error = res.error;
      ++failed_attempts;
      const int budget = session_max_attempts[task.idx];
      if (draining) {
        // A real failure racing the drain: keep the consumed attempt (the
        // chaos schedule will reproduce it on replay) and suspend instead
        // of re-queueing — no new attempts start during a drain.
        out.suspended = true;
        terminal = true;
        Note("serve[%s]: suspended by drain after failed attempt: %s\n",
             specs[task.idx].dataset_dir, res.error);
      } else if (st.attempts < budget) {
        const long delay = BackoffDelayMs(st.attempts + 1, fleet.backoff_ms,
                                          fleet.backoff_cap_ms);
        queue.push_back(Task{task.idx,
                             Clock::now() + std::chrono::milliseconds(delay)});
        Note("serve[%s]: attempt failed, retrying: %s\n",
             specs[task.idx].dataset_dir, res.error);
      } else {
        out.ok = false;
        out.quarantined = true;
        terminal = true;
        Note("serve[%s]: QUARANTINED: %s\n", specs[task.idx].dataset_dir,
             res.error);
      }
    }

    if (terminal) {
      st.terminal = true;
      st.latency_s =
          std::chrono::duration<double>(Clock::now() - st.admitted_at)
              .count();
      if (!out.ok || out.summary.checkpoints > 0) {
        // Best-effort partial/final progress from the last checkpoint (for
        // a failed session this is what the operator gets instead of
        // nothing — ISSUE 8 satellite 2).
        if (!out.ok) {
          LiveSummary sum;
          std::int64_t to_us = 0;
          if (LoadProgressFromState(specs[task.idx].state_dir, &sum,
                                    &to_us)) {
            sum.dataset_dir = specs[task.idx].dataset_dir;
            out.summary = sum;
            out.has_partial = true;
            out.checkpointed_to_us = to_us;
          }
        }
      }
      if (out.ok && fleet.gc_checkpoints &&
          (!fleet.gc_guard || fleet.gc_guard(specs[task.idx]))) {
        // Bounded state: a completed session's checkpoint has served its
        // purpose (report + chain log remain). Quarantined and suspended
        // sessions keep theirs — postmortem and resume respectively. In
        // shard mode the gc_guard additionally requires a current lease,
        // so a takeover box can never race this deletion.
        std::error_code gc_ec;
        fs::remove(specs[task.idx].state_dir + "/live.ckpt", gc_ec);
        // Staging files carry process-unique suffixes (AtomicTempSuffix),
        // so sweep by prefix rather than one fixed name.
        for (const auto& e :
             fs::directory_iterator(specs[task.idx].state_dir, gc_ec)) {
          const std::string name = e.path().filename().string();
          if (name.rfind("live.ckpt.tmp", 0) == 0) fs::remove(e.path(), gc_ec);
        }
      }
      --open_sessions;
      if (open_sessions == 0 &&
          (no_more || drain.load(std::memory_order_relaxed))) {
        done = true;
      }
    }
    // The terminal hook runs outside the supervisor lock: it does disk I/O
    // (done marker + lease release) and must not stall the other workers.
    const bool call_terminal = terminal && static_cast<bool>(fleet.on_terminal);
    SessionSpec terminal_spec;
    SessionOutcome terminal_out;
    if (call_terminal) {
      terminal_spec = specs[task.idx];
      terminal_out = st.outcome;
    }
    cv.notify_all();
    lk.unlock();
    if (call_terminal) fleet.on_terminal(terminal_spec, terminal_out);
  }
}

void FleetSupervisor::Impl::MonitorLoop() {
  // Thread-isolation deadlines: poll every armed worker slot and flip its
  // cancel token once the wall-clock budget is spent. The runner notices
  // at its next poll boundary (or inside its wedge/sleep loops) and aborts
  // the attempt with a "cancelled" error, which escalates into the normal
  // retry/quarantine path.
  while (!monitor_stop.load(std::memory_order_acquire)) {
    const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    for (auto& slot : slots) {
      if (slot->armed.load(std::memory_order_acquire) &&
          now_ms >= slot->deadline_ms.load(std::memory_order_relaxed)) {
        slot->cancel.store(true, std::memory_order_relaxed);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

FleetReport FleetSupervisor::Run() {
  Impl& im = *impl_;
  if (im.ran) throw std::logic_error("fleet: Run() already called");
  im.ran = true;

  bool skip_pool = false;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    // Session state and the queue were built by the constructor (and any
    // pre-Run AddSessions). All-terminal seeds leave nothing open.
    if (im.open_sessions == 0 && im.no_more) im.done = true;
    skip_pool = im.state.empty() && im.no_more;
  }

  if (!skip_pool) {
    std::thread monitor;
    if (im.fleet.isolate == IsolationMode::kThread &&
        (im.fleet.session_deadline_s > 0 || im.fleet.dynamic)) {
      // Dynamic fleets always run the monitor: a SIGHUP tunables reload
      // may introduce a deadline after startup.
      monitor = std::thread([&im] { im.MonitorLoop(); });
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(im.workers));
    for (int w = 0; w < im.workers; ++w) {
      pool.emplace_back([&im, w] { im.WorkerLoop(w); });
    }
    for (std::thread& t : pool) t.join();
    im.monitor_stop.store(true, std::memory_order_release);
    if (monitor.joinable()) monitor.join();
  }

  FleetReport report;
  std::lock_guard<std::mutex> lk(im.mu);
  report.workers = im.workers;
  report.max_attempts = im.fleet.max_attempts;
  report.global_backlog_windows = im.fleet.global_backlog_windows;
  report.isolate = im.fleet.isolate;
  report.drained = im.drain.load(std::memory_order_relaxed);
  for (Impl::SessionState& st : im.state) {
    report.outcomes.push_back(std::move(st.outcome));
    report.session_latency_s.push_back(st.latency_s);
  }
  for (const SessionOutcome& o : report.outcomes) {
    report.total_attempts += o.attempts;
    if (o.ok) {
      ++report.completed;
      if (o.attempts > 1) ++report.recovered;
    }
    if (o.quarantined) ++report.quarantined;
    if (o.suspended) ++report.suspended;
    if (o.fenced) ++report.fenced;
    report.total_windows += o.summary.windows;
    report.total_chains += o.summary.chains;
    report.total_shed_windows += o.summary.shed_windows;
  }
  return report;
}

void FleetSupervisor::AddSessions(std::vector<SessionSpec> specs,
                                  std::vector<SessionChaos> chaos) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  if (im.done || im.no_more || im.drain.load(std::memory_order_relaxed)) {
    return;
  }
  for (SessionSpec& s : specs) {
    if (s.state_dir.empty()) s.state_dir = DefaultStateDir(s.dataset_dir);
  }
  // The whole batch counts towards the tenant shares before any of it is
  // set up, mirroring the constructor's treatment of the initial batch.
  for (const SessionSpec& s : specs) ++im.tenant_sessions[s.tenant];
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SessionChaos* c = i < chaos.size() ? &chaos[i] : nullptr;
    im.SetupSession(std::move(specs[i]), c, nullptr);
  }
  im.cv.notify_all();
}

void FleetSupervisor::NoMoreSessions() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  im.no_more = true;
  if (im.open_sessions == 0) im.done = true;
  im.cv.notify_all();
}

void FleetSupervisor::RequestDrain() {
  Impl& im = *impl_;
  im.drain.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(im.mu);
  im.cv.notify_all();
}

void FleetSupervisor::CancelInFlight() {
  for (auto& slot : impl_->slots) {
    slot->cancel.store(true, std::memory_order_relaxed);
  }
}

void FleetSupervisor::UpdateTunables(int max_attempts, long backoff_ms,
                                     long backoff_cap_ms,
                                     double session_deadline_s) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  if (max_attempts >= 1) {
    im.fleet.max_attempts = max_attempts;
    for (std::size_t i = 0; i < im.session_max_attempts.size(); ++i) {
      if (im.has_tenant_attempts[i] == 0) {
        im.session_max_attempts[i] = max_attempts;
      }
    }
  }
  if (backoff_ms > 0) im.fleet.backoff_ms = backoff_ms;
  if (backoff_cap_ms > 0) im.fleet.backoff_cap_ms = backoff_cap_ms;
  if (session_deadline_s > 0) {
    im.fleet.session_deadline_s = session_deadline_s;
    im.deadline_s.store(session_deadline_s, std::memory_order_relaxed);
  }
}

FleetSupervisor::Status FleetSupervisor::Snapshot() const {
  Impl& im = *impl_;
  Status s;
  std::lock_guard<std::mutex> lk(im.mu);
  s.known = static_cast<long>(im.state.size());
  for (const Impl::Task& t : im.queue) {
    ++s.pending;
    if (im.state[t.idx].attempts > 0) ++s.retrying;
  }
  for (std::size_t i = 0; i < im.state.size(); ++i) {
    const Impl::SessionState& st = im.state[i];
    if (st.terminal) {
      const SessionOutcome& o = st.outcome;
      if (o.ok) ++s.completed;
      if (o.quarantined) ++s.quarantined;
      if (o.suspended) ++s.suspended;
      if (o.fenced) ++s.fenced;
      s.total_windows += o.summary.windows;
      s.total_chains += o.summary.chains;
      s.total_shed_windows += o.summary.shed_windows;
    } else if (st.admitted) {
      s.open_state_dirs.push_back(im.specs[i].state_dir);
    }
  }
  s.active = static_cast<long>(im.open_sessions) - s.pending;
  s.failed_attempts = im.failed_attempts;
  s.draining = im.drain.load(std::memory_order_relaxed);
  return s;
}

std::string FormatFleetReportText(const FleetReport& report) {
  std::ostringstream os;
  os << "fleet: " << report.outcomes.size() << " sessions over "
     << report.workers << " workers (" << IsolateName(report.isolate)
     << " isolation, max " << report.max_attempts << " attempts";
  if (report.global_backlog_windows > 0) {
    os << ", global backlog " << report.global_backlog_windows;
  }
  os << ")\n";
  os << "  completed " << report.completed << " (" << report.recovered
     << " recovered), quarantined " << report.quarantined;
  if (report.suspended > 0) os << ", suspended " << report.suspended;
  if (report.fenced > 0) os << ", fenced " << report.fenced;
  os << ", " << report.total_attempts << " attempts total";
  if (report.drained) os << " [drained]";
  os << "\n";
  os << "  windows " << report.total_windows << ", chains "
     << report.total_chains << ", shed " << report.total_shed_windows
     << "\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "  session latency p50 %.3fs p99 %.3fs\n",
                LatencyPercentile(report.session_latency_s, 50),
                LatencyPercentile(report.session_latency_s, 99));
  os << buf;
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const SessionOutcome& o = report.outcomes[i];
    os << "  [" << i << "] "
       << (o.ok            ? "ok         "
           : o.quarantined ? "QUARANTINED"
           : o.suspended   ? "suspended  "
           : o.fenced      ? "fenced     "
                           : "failed   ")
       << " " << o.dataset_dir;
    if (!o.tenant.empty()) os << " tenant=" << o.tenant;
    os << " attempts=" << o.attempts;
    if (o.ok || o.has_partial) {
      os << " windows=" << o.summary.windows
         << " chains=" << o.summary.chains;
      if (o.summary.shed_windows > 0) os << " shed=" << o.summary.shed_windows;
      if (o.has_partial) os << " (partial, up to checkpoint)";
    }
    if (o.deadline_exceeded) os << " [deadline exceeded]";
    if (o.term_signal != 0) os << " [signal " << o.term_signal << "]";
    if (!o.error.empty()) os << "\n        error: " << o.error;
    os << "\n";
  }
  return os.str();
}

std::string BuildFleetReportJson(const FleetReport& report) {
  using analysis::JsonEscape;
  // Only wall-clock-free, schedule-invariant quantities: this document is
  // byte-compared between two runs of the same fleet command, whatever the
  // worker interleaving. (Notably absent: session latencies — those are
  // text-report only.)
  std::ostringstream os;
  os << "{\n";
  os << "  \"fleet\": {\"sessions\": " << report.outcomes.size()
     << ", \"workers\": " << report.workers
     << ", \"max_attempts\": " << report.max_attempts
     << ", \"global_backlog_windows\": " << report.global_backlog_windows
     << ", \"isolate\": \"" << IsolateName(report.isolate) << "\"},\n";
  os << "  \"counts\": {\"completed\": " << report.completed
     << ", \"recovered\": " << report.recovered
     << ", \"quarantined\": " << report.quarantined
     << ", \"suspended\": " << report.suspended
     << ", \"fenced\": " << report.fenced
     << ", \"total_attempts\": " << report.total_attempts << "},\n";
  os << "  \"progress\": {\"windows\": " << report.total_windows
     << ", \"chains\": " << report.total_chains
     << ", \"shed_windows\": " << report.total_shed_windows << "},\n";
  os << "  \"sessions\": [";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const SessionOutcome& o = report.outcomes[i];
    os << (i == 0 ? "" : ",") << "\n    {\"dataset\": \""
       << JsonEscape(o.dataset_dir) << "\", \"tenant\": \""
       << JsonEscape(o.tenant) << "\", \"ok\": " << (o.ok ? "true" : "false")
       << ", \"quarantined\": " << (o.quarantined ? "true" : "false")
       << ", \"suspended\": " << (o.suspended ? "true" : "false")
       << ", \"fenced\": " << (o.fenced ? "true" : "false")
       << ", \"deadline_exceeded\": "
       << (o.deadline_exceeded ? "true" : "false")
       << ", \"attempts\": " << o.attempts
       << ", \"exit_code\": " << o.exit_code
       << ", \"term_signal\": " << o.term_signal
       << ", \"partial\": " << (o.has_partial ? "true" : "false")
       << ", \"windows\": " << o.summary.windows
       << ", \"chains\": " << o.summary.chains
       << ", \"insufficient_chains\": " << o.summary.insufficient_chains
       << ", \"shed_windows\": " << o.summary.shed_windows
       << ", \"checkpoints\": " << o.summary.checkpoints
       << ", \"checkpointed_to_us\": " << o.checkpointed_to_us
       << ", \"error\": \"" << JsonEscape(o.error) << "\"}";
  }
  os << (report.outcomes.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace domino::runtime
