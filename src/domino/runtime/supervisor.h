// Multi-session supervision for `domino live`.
//
// One operator box typically watches several concurrent calls. The
// supervisor runs N LiveRunner sessions — one per dataset directory, each
// with its own state directory, tail reader, detector, and watchdog —
// with *no shared mutable state* between them, so one poisoned stream
// (corrupt checkpoint, missing meta, truncated files) ends its own session
// with a recorded error and cannot stall or corrupt the others.
//
// Parallel mode runs each session on its own thread (session isolation is
// structural: the only cross-thread data is the immutable options/graph
// and the per-session outcome slot). Sequential mode exists for
// deterministic debugging and for machines where N datasets won't fit in
// N threads' memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "domino/graph.h"
#include "domino/runtime/live.h"

namespace domino::runtime {

struct SessionSpec {
  std::string dataset_dir;
  std::string state_dir;  ///< Empty = DefaultStateDir(dataset_dir).
  std::string tenant;     ///< Budget group for fleet mode ("" = untenanted).
};

struct SessionOutcome {
  std::string dataset_dir;
  std::string tenant;
  bool ok = false;
  std::string error;    ///< Why the session failed (ok == false).
  LiveSummary summary;  ///< Full summary when ok; best-effort partial
                        ///< progress reconstructed from the last good
                        ///< checkpoint when not (see has_partial).

  // Fleet-mode supervision record (FleetSupervisor; RunSessions leaves the
  // defaults except attempts = 1).
  int attempts = 0;        ///< Attempts consumed, including the final one.
  bool quarantined = false;       ///< Attempt budget exhausted.
  bool deadline_exceeded = false;  ///< Any attempt hit the wall-clock deadline.
  int exit_code = -1;      ///< Process isolation: child exit code (-1 = n/a).
  int term_signal = 0;     ///< Process isolation: signal that killed the child.
  bool has_partial = false;  ///< `summary` carries checkpoint-derived partial
                             ///< progress for a failed session.
  /// Graceful drain stopped this session mid-run (fleet daemon mode). Not
  /// a failure: the checkpoint is intact and a restarted fleet resumes it
  /// to the same final outcome an undisturbed run would have produced.
  bool suspended = false;
  /// Sharded fleet mode: the session's lease was stolen mid-attempt (this
  /// box was presumed dead) and the fencing check stopped every further
  /// write. Terminal here but not a fleet failure — the new owner finishes
  /// the work; no published file was touched by the fenced attempt.
  bool fenced = false;
  /// Trace time the last good checkpoint covers (µs since epoch; 0 = none).
  std::int64_t checkpointed_to_us = 0;
};

/// Best-effort partial progress for a failed session: reconstructs a
/// LiveSummary (windows, chains, shed, checkpoints, ...) from the last good
/// checkpoint in `state_dir`, if any. Returns false (and leaves `out`
/// untouched) when no readable checkpoint exists.
bool LoadProgressFromState(const std::string& state_dir, LiveSummary* out,
                           std::int64_t* checkpointed_to_us);

/// Runs every session to completion and returns one outcome per spec, in
/// spec order. Never throws: per-session failures are captured in the
/// outcome. `parallel` selects thread-per-session execution.
std::vector<SessionOutcome> RunSessions(const std::vector<SessionSpec>& specs,
                                        const analysis::CausalGraph& graph,
                                        const LiveOptions& opts,
                                        bool parallel);

}  // namespace domino::runtime
