// Multi-session supervision for `domino live`.
//
// One operator box typically watches several concurrent calls. The
// supervisor runs N LiveRunner sessions — one per dataset directory, each
// with its own state directory, tail reader, detector, and watchdog —
// with *no shared mutable state* between them, so one poisoned stream
// (corrupt checkpoint, missing meta, truncated files) ends its own session
// with a recorded error and cannot stall or corrupt the others.
//
// Parallel mode runs each session on its own thread (session isolation is
// structural: the only cross-thread data is the immutable options/graph
// and the per-session outcome slot). Sequential mode exists for
// deterministic debugging and for machines where N datasets won't fit in
// N threads' memory.
#pragma once

#include <string>
#include <vector>

#include "domino/graph.h"
#include "domino/runtime/live.h"

namespace domino::runtime {

struct SessionSpec {
  std::string dataset_dir;
  std::string state_dir;  ///< Empty = DefaultStateDir(dataset_dir).
};

struct SessionOutcome {
  std::string dataset_dir;
  bool ok = false;
  std::string error;    ///< Why the session failed (ok == false).
  LiveSummary summary;  ///< Valid when ok.
};

/// Runs every session to completion and returns one outcome per spec, in
/// spec order. Never throws: per-session failures are captured in the
/// outcome. `parallel` selects thread-per-session execution.
std::vector<SessionOutcome> RunSessions(const std::vector<SessionSpec>& specs,
                                        const analysis::CausalGraph& graph,
                                        const LiveOptions& opts,
                                        bool parallel);

}  // namespace domino::runtime
