// The causal graph Domino traces (Fig. 9): a DAG whose roots are 5G causes,
// whose internal nodes are cross-layer intermediate effects, and whose sinks
// are WebRTC consequences. Chains are root->sink paths; the default graph
// yields exactly the paper's 24 chains (§4.2).
//
// Nodes carry a detection predicate. Built-in nodes wrap DetectEvent; the
// config DSL (config_parser.h) can add nodes with user-defined expressions,
// making the graph user-extensible as the paper describes.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "domino/events.h"

namespace domino::analysis {

enum class NodeKind { kCause, kIntermediate, kConsequence };

struct Node {
  std::string name;
  NodeKind kind;
  /// Window predicate. Thresholds are bound at graph construction.
  std::function<bool(const WindowContext&)> detect;
  /// Set when the node wraps a built-in event (used for reporting).
  std::optional<EventRef> builtin;
  /// The thresholds bound into `detect` for built-in nodes; lets the
  /// detector share one per-window detection between nodes and the feature
  /// extractor when they agree on thresholds.
  std::optional<EventThresholds> builtin_thresholds;
  /// Raw-stream use masks for DSL-defined nodes, one per perspective
  /// (index = sender_client). Filled by ExtendGraph from the event's
  /// declared `requires` streams, or inferred from the series its
  /// condition reads (lint::InferStreamUse). 0 = unknown: the detector
  /// then applies no data-quality degradation, the pre-declaration
  /// behaviour. Built-in nodes use RequiredStreams() instead.
  std::array<StreamMask, 2> custom_streams{};
};

/// A root->sink path through the graph, by node index.
using ChainPath = std::vector<int>;

class CausalGraph {
 public:
  /// Adds a node; name must be unique. Returns the node index.
  int AddNode(Node node);

  /// Adds a built-in event node, binding the given thresholds.
  int AddBuiltinNode(const std::string& name, NodeKind kind, EventRef ref,
                     const EventThresholds& th);

  /// Adds a directed edge between existing nodes (by name).
  void AddEdge(const std::string& from, const std::string& to);
  void AddEdge(int from, int to);

  [[nodiscard]] int FindNode(const std::string& name) const;  ///< -1 if absent
  [[nodiscard]] const Node& node(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<std::vector<int>>& adjacency() const {
    return adj_;
  }

  /// Throws std::runtime_error (naming an offending path) on a cycle.
  void Validate() const;

  /// A directed cycle as node indices with the entry node repeated at the
  /// end ("a b c a"); empty when the graph is acyclic.
  [[nodiscard]] std::vector<int> FindCycle() const;

  /// All cause->consequence paths, in deterministic (DFS) order.
  [[nodiscard]] std::vector<ChainPath> EnumerateChains() const;

  /// The paper's default graph (Fig. 9): 6 causes x {forward, reverse} legs,
  /// delay intermediates, 3 consequences; 24 chains total.
  static CausalGraph Default(const EventThresholds& th = {});

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<int>> adj_;
};

/// Renders a chain as "cause -> ... -> consequence" using node names.
std::string FormatChain(const CausalGraph& graph, const ChainPath& path);

}  // namespace domino::analysis
