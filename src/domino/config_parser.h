// Text configuration API (§4.2, "Extensibility of Domino").
//
// A config file defines custom events and causal chains:
//
//     # events are boolean window conditions in the expression DSL
//     event big_delay: max(fwd.owd_ms) > 200 and trend_up(fwd.owd_ms)
//
//     # chains connect causes, intermediates, and a consequence; names
//     # resolve to built-in events (Table 5), custom events, or nodes that
//     # already exist in the graph being extended. "@rev" evaluates a
//     # built-in on the reverse (feedback) leg.
//     chain my_chain: cross_traffic -> tbs_drop -> big_delay -> target_bitrate_drop
//
// The first node of a chain is its cause and the last its consequence; a
// name's role is fixed by its first appearance.
#pragma once

#include <string>
#include <vector>

#include "domino/expr.h"
#include "domino/graph.h"

namespace domino::analysis {

struct ConfigEventDef {
  std::string name;
  std::string expr_text;
  ExprPtr expr;
};

struct ConfigChainDef {
  std::string name;
  std::vector<std::string> nodes;  ///< In cause -> consequence order.
};

struct DominoConfigFile {
  std::vector<ConfigEventDef> events;
  std::vector<ConfigChainDef> chains;
};

/// Parses config text. Throws DslError with a line reference on problems.
DominoConfigFile ParseConfigText(const std::string& text);

/// Adds the config's events and chains to `graph`. New nodes get detection
/// predicates from custom expressions or built-in conditions; their kind is
/// inferred from chain position. Existing nodes are reused as-is.
void ExtendGraph(CausalGraph& graph, const DominoConfigFile& cfg,
                 const EventThresholds& th);

/// Builds a graph containing only the config's chains (fresh graph).
CausalGraph BuildGraphFromConfig(const DominoConfigFile& cfg,
                                 const EventThresholds& th);

}  // namespace domino::analysis
