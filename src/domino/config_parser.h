// Text configuration API (§4.2, "Extensibility of Domino").
//
// A config file defines custom events and causal chains:
//
//     # events are boolean window conditions in the expression DSL
//     event big_delay: max(fwd.owd_ms) > 200 and trend_up(fwd.owd_ms)
//
//     # chains connect causes, intermediates, and a consequence; names
//     # resolve to built-in events (Table 5), custom events, or nodes that
//     # already exist in the graph being extended. "@rev" evaluates a
//     # built-in on the reverse (feedback) leg.
//     chain my_chain: cross_traffic -> tbs_drop -> big_delay -> target_bitrate_drop
//
// The first node of a chain is its cause and the last its consequence; a
// name's role is fixed by its first appearance.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "domino/expr.h"
#include "domino/graph.h"
#include "domino/lint/diagnostics.h"

namespace domino::analysis {

struct ConfigEventDef {
  std::string name;
  std::string expr_text;
  ExprPtr expr;             ///< Null when the expression had errors.
  bool is_boolean = false;  ///< Top-level expression shape (see CheckedExpr).
  bool is_series = false;
  int line = 0;             ///< 1-based definition line (0 = synthetic def).
  int expr_col = 0;         ///< 1-based column where the expression starts.
  lint::SourceSpan name_span;
  /// Streams declared via `event name requires dci, packets: ...`. Empty =
  /// no declaration; the verifier (DL406) checks declared against inferred
  /// use, and the detector degrades confidence by the declared streams.
  std::vector<std::string> required_streams;
  lint::SourceSpan requires_span;  ///< The clause after `requires`.
};

struct ConfigChainDef {
  std::string name;
  std::vector<std::string> nodes;  ///< In cause -> consequence order.
  int line = 0;
  lint::SourceSpan name_span;
  std::vector<lint::SourceSpan> node_spans;  ///< Parallel to `nodes`.
};

struct DominoConfigFile {
  std::vector<ConfigEventDef> events;
  std::vector<ConfigChainDef> chains;
};

/// Parses config text. Throws DslError with a line reference on problems
/// (thin legacy wrapper: first error of ParseConfigChecked).
DominoConfigFile ParseConfigText(const std::string& text);

/// Lint-grade parse: recovers per line, reports every problem into `sink`
/// with file-accurate line:column spans, and keeps whatever parsed cleanly.
/// Event expressions run through ParseExpressionChecked, so expression
/// diagnostics land here too, rebased onto the config line.
/// `limits` bounds total config size, definition count, and per-expression
/// parser work (DL213 / DL006); anything over budget fails closed with a
/// diagnostic instead of consuming unbounded memory.
DominoConfigFile ParseConfigChecked(const std::string& text,
                                    lint::DiagnosticSink& sink,
                                    const InputLimits& limits = {});

/// Splits "name@rev" into (name, kRev); plain names resolve to kFwd.
std::pair<std::string, PathLeg> SplitNodeLeg(const std::string& name);

/// Adds the config's events and chains to `graph`. New nodes get detection
/// predicates from custom expressions or built-in conditions; their kind is
/// inferred from chain position. Existing nodes are reused as-is.
void ExtendGraph(CausalGraph& graph, const DominoConfigFile& cfg,
                 const EventThresholds& th);

/// ExtendGraph without the final acyclicity Validate(); the lint layer uses
/// this to report cycles as diagnostics instead of exceptions.
void ExtendGraphUnchecked(CausalGraph& graph, const DominoConfigFile& cfg,
                          const EventThresholds& th);

/// Builds a graph containing only the config's chains (fresh graph).
CausalGraph BuildGraphFromConfig(const DominoConfigFile& cfg,
                                 const EventThresholds& th);

}  // namespace domino::analysis
