#include "domino/incremental.h"

#include <exception>
#include <mutex>
#include <thread>

namespace domino::analysis {

// ---------------------------------------------------------------------------
// SeriesCursor
// ---------------------------------------------------------------------------

void SeriesCursor::Advance(Time begin, Time end) {
  if (init_ && begin == begin_ && end == end_) return;
  const std::size_t n = series_->size();
  // hi_ > n means the series shrank under us (stale cursor): the indices are
  // meaningless, so re-seat instead of walking out of bounds.
  if (!init_ || begin < begin_ || end < end_ || hi_ > n) Reset(begin);
  begin_ = begin;
  end_ = end;
  while (hi_ < n && At(hi_).time < end) {
    Enter(hi_);
    ++hi_;
  }
  while (lo_ < hi_ && At(lo_).time < begin) {
    Leave(lo_);
    ++lo_;
  }
}

void SeriesCursor::Reset(Time begin) {
  lo_ = hi_ = series_->LowerBound(begin);
  min_dq_.clear();
  max_dq_.clear();
  sum_ = 0;
  for (Counter& c : counters_) c.n = 0;
  init_ = true;
}

void SeriesCursor::Enter(std::size_t i) {
  double v = Value(i);
  // Strict pops keep the earliest of equal extrema at the front, matching
  // std::min_element / std::max_element first-occurrence semantics.
  while (!min_dq_.empty() && Value(min_dq_.back()) > v) min_dq_.pop_back();
  min_dq_.push_back(i);
  while (!max_dq_.empty() && Value(max_dq_.back()) < v) max_dq_.pop_back();
  max_dq_.push_back(i);
  sum_ += v;
  for (Counter& c : counters_) {
    if (Matches(c, v)) ++c.n;
  }
}

void SeriesCursor::Leave(std::size_t i) {
  double v = Value(i);
  if (!min_dq_.empty() && min_dq_.front() == i) min_dq_.pop_front();
  if (!max_dq_.empty() && max_dq_.front() == i) max_dq_.pop_front();
  sum_ -= v;
  for (Counter& c : counters_) {
    if (Matches(c, v)) --c.n;
  }
}

std::size_t SeriesCursor::CountCmp(CountOp op, double x) {
  for (const Counter& c : counters_) {
    if (c.op == op && c.x == x) return c.n;
  }
  Counter c{op, x, 0};
  for (std::size_t i = lo_; i < hi_; ++i) {
    if (Matches(c, Value(i))) ++c.n;
  }
  counters_.push_back(c);
  return c.n;
}

// ---------------------------------------------------------------------------
// BucketGridCursor
// ---------------------------------------------------------------------------

BucketGridCursor::BucketGridCursor(const TimeSeries<double>& s, Time anchor,
                                   Duration width)
    : series_(&s), anchor_(anchor), width_(width) {
  next_ = series_->LowerBound(anchor);
}

bool BucketGridCursor::Aligned(Time begin, Time end) const {
  if (width_.micros() <= 0 || begin < anchor_) return false;
  return (begin - anchor_).micros() % width_.micros() == 0 &&
         (end - begin).micros() % width_.micros() == 0;
}

void BucketGridCursor::AbsorbUpTo(Time end) {
  const std::size_t n = series_->size();
  const std::int64_t w = width_.micros();
  while (next_ < n && (*series_)[next_].time < end) {
    const auto& s = (*series_)[next_];
    auto m = static_cast<std::size_t>((s.time - anchor_).micros() / w);
    if (m >= bucket_sum_.size()) {
      bucket_sum_.resize(m + 1, 0.0);
      bucket_cnt_.resize(m + 1, 0);
    }
    bucket_sum_[m] += s.value;
    ++bucket_cnt_[m];
    ++next_;
  }
}

std::vector<double> BucketGridCursor::Means(Time begin, Time end) {
  AbsorbUpTo(end);
  const std::int64_t w = width_.micros();
  auto m0 = static_cast<std::size_t>((begin - anchor_).micros() / w);
  auto m1 = static_cast<std::size_t>((end - anchor_).micros() / w);
  std::vector<double> out;
  out.reserve(m1 - m0);
  for (std::size_t m = m0; m < m1 && m < bucket_cnt_.size(); ++m) {
    if (bucket_cnt_[m] > 0) {
      out.push_back(bucket_sum_[m] / static_cast<double>(bucket_cnt_[m]));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// WindowStatsCache
// ---------------------------------------------------------------------------

void WindowStatsCache::BeginWindow(Time begin, Time end) {
  begin_ = begin;
  end_ = end;
  event_memo_.fill(-1);
  // Cursors advance lazily on first access per window (Cursor()).
}

SeriesCursor& WindowStatsCache::Cursor(const TimeSeries<double>& s) {
  auto [it, inserted] = cursors_.try_emplace(&s, s);
  it->second.Advance(begin_, end_);
  return it->second;
}

WindowView<double> WindowStatsCache::View(const TimeSeries<double>& s) {
  return Cursor(s).View();
}
std::size_t WindowStatsCache::Count(const TimeSeries<double>& s) {
  return Cursor(s).count();
}
double WindowStatsCache::Min(const TimeSeries<double>& s) {
  return Cursor(s).Min();
}
double WindowStatsCache::Max(const TimeSeries<double>& s) {
  return Cursor(s).Max();
}
Time WindowStatsCache::ArgMin(const TimeSeries<double>& s) {
  return Cursor(s).ArgMin();
}
Time WindowStatsCache::ArgMax(const TimeSeries<double>& s) {
  return Cursor(s).ArgMax();
}
double WindowStatsCache::Sum(const TimeSeries<double>& s) {
  return Cursor(s).Sum();
}
std::size_t WindowStatsCache::CountCmp(const TimeSeries<double>& s, CountOp op,
                                       double x) {
  return Cursor(s).CountCmp(op, x);
}

std::vector<double> WindowStatsCache::TimeBuckets(const TimeSeries<double>& s,
                                                  Duration width) {
  GridKey key{&s, width.micros()};
  auto it = grids_.find(key);
  if (it == grids_.end()) {
    // Anchor the grid at the first window that asks; later aligned windows
    // share its bucket edges.
    it = grids_.emplace(key, BucketGridCursor(s, begin_, width)).first;
  }
  if (it->second.Aligned(begin_, end_)) {
    return it->second.Means(begin_, end_);
  }
  return TimeBucketMeans(Cursor(s).View(), begin_, width);
}

std::size_t WindowStatsCache::EventKey(EventType type, PathLeg leg,
                                       int sender) {
  auto t = static_cast<std::size_t>(type) - 1;  // EventType is 1-based.
  std::size_t l = leg == PathLeg::kRev ? 1 : 0;
  return (t * 2 + l) * 2 + static_cast<std::size_t>(sender);
}

std::optional<bool> WindowStatsCache::LookupEvent(EventType type, PathLeg leg,
                                                  int sender) const {
  std::int8_t v = event_memo_[EventKey(type, leg, sender)];
  if (v < 0) return std::nullopt;
  return v != 0;
}

void WindowStatsCache::StoreEvent(EventType type, PathLeg leg, int sender,
                                  bool value) {
  event_memo_[EventKey(type, leg, sender)] = value ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Parallel fan-out helpers
// ---------------------------------------------------------------------------

int EffectiveThreads(int requested, std::size_t max_useful) {
  int t = requested;
  if (t <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    t = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (max_useful < 1) max_useful = 1;
  if (static_cast<std::size_t>(t) > max_useful) {
    t = static_cast<int>(max_useful);
  }
  return t < 1 ? 1 : t;
}

void ParallelChunks(std::size_t n, int threads,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  threads = EffectiveThreads(threads, n);
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  auto k = static_cast<std::size_t>(threads);
  std::vector<std::thread> workers;
  workers.reserve(k - 1);
  std::exception_ptr error;
  std::mutex error_mu;
  auto run = [&](std::size_t b, std::size_t e) {
    try {
      fn(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
  };
  // Chunk i covers [i*n/k, (i+1)*n/k) — contiguous so each worker's cursors
  // stay monotone; the merge order is fixed by the index range itself.
  for (std::size_t i = 1; i < k; ++i) {
    workers.emplace_back(run, i * n / k, (i + 1) * n / k);
  }
  run(0, n / k);
  for (auto& w : workers) w.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace domino::analysis
