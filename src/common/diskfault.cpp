#include "common/diskfault.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif
#if defined(_WIN32)
#include <process.h>
#endif

namespace domino {

const std::string& AtomicTempSuffix() {
  // pid alone can collide across boxes on a shared filesystem, so mix in
  // the process start instant. Computed once: one process writes its temp
  // files sequentially, so a single per-process name suffices.
  static const std::string suffix = [] {
#if defined(_WIN32)
    const unsigned long long pid = static_cast<unsigned long long>(_getpid());
#else
    const unsigned long long pid = static_cast<unsigned long long>(::getpid());
#endif
    unsigned long long h = 1469598103934665603ULL;
    const unsigned long long boot = static_cast<unsigned long long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    for (unsigned long long v : {pid, boot}) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ULL;
      }
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), ".tmp.%08llx", h & 0xffffffffULL);
    return std::string(buf);
  }();
  return suffix;
}

bool ParseDiskFaultSpec(const std::string& text, DiskFaultSpec* spec) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos || colon + 1 >= text.size()) return false;
  const std::string kind = text.substr(0, colon);
  const std::string num = text.substr(colon + 1);
  DiskFaultSpec out;
  if (kind == "enospc") {
    out.kind = DiskFaultSpec::Kind::kEnospc;
  } else if (kind == "eio") {
    out.kind = DiskFaultSpec::Kind::kEio;
  } else if (kind == "short") {
    out.kind = DiskFaultSpec::Kind::kShortWrite;
  } else if (kind == "rename") {
    out.kind = DiskFaultSpec::Kind::kRename;
  } else if (kind == "fsync") {
    out.kind = DiskFaultSpec::Kind::kFsync;
  } else {
    return false;
  }
  long n = 0;
  for (char c : num) {
    if (c < '0' || c > '9') return false;
    if (n > 1000000) return false;
    n = n * 10 + (c - '0');
  }
  if (n < 1) return false;
  out.at_write = n;
  *spec = out;
  return true;
}

int DiskFaultInjector::OnWrite(std::size_t payload_bytes,
                               std::size_t* short_cap) {
  ++writes_seen_;
  if (spec_.kind == DiskFaultSpec::Kind::kNone || fired_ ||
      writes_seen_ != spec_.at_write) {
    return 0;
  }
  fired_ = true;
  ++faults_injected_;
  last_fault_kind_ = spec_.kind;
  switch (spec_.kind) {
    case DiskFaultSpec::Kind::kEnospc:
      last_fault_name_ = "ENOSPC";
      return ENOSPC;
    case DiskFaultSpec::Kind::kEio:
      last_fault_name_ = "EIO";
      return EIO;
    case DiskFaultSpec::Kind::kShortWrite:
      last_fault_name_ = "short write";
      if (short_cap != nullptr) *short_cap = payload_bytes / 2;
      return EIO;
    case DiskFaultSpec::Kind::kRename:
      last_fault_name_ = "rename failure";
      return EIO;
    case DiskFaultSpec::Kind::kFsync:
      last_fault_name_ = "fsync failure";
      return EIO;
    case DiskFaultSpec::Kind::kNone:
      break;
  }
  return 0;
}

bool AtomicWriteFile(const std::string& path, const std::string& body,
                     bool fsync_file, DiskFaultInjector* fault,
                     std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const std::string tmp = path + AtomicTempSuffix();
  std::size_t cap = body.size();
  int injected = 0;
  DiskFaultSpec::Kind inj_kind = DiskFaultSpec::Kind::kNone;
  if (fault != nullptr) {
    injected = fault->OnWrite(body.size(), &cap);
    if (injected != 0) inj_kind = fault->last_fault_kind();
  }
  // A fault is injected at the protocol stage its kind names, so each stage
  // of the atomic write (write, fsync, rename) is separately provable: the
  // target file never changes on any failure, whatever the stage.
  const bool inj_write = injected != 0 &&
                         (inj_kind == DiskFaultSpec::Kind::kEnospc ||
                          inj_kind == DiskFaultSpec::Kind::kEio);
  const bool inj_short =
      injected != 0 && inj_kind == DiskFaultSpec::Kind::kShortWrite;
  const bool inj_fsync =
      injected != 0 && inj_kind == DiskFaultSpec::Kind::kFsync;
  const bool inj_rename =
      injected != 0 && inj_kind == DiskFaultSpec::Kind::kRename;
  if (inj_write) {
    // Full-write fault: fail before touching the filesystem, like a
    // write() that returned -1 immediately.
    return fail("write '" + path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
#if defined(_WIN32)
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return fail("cannot open '" + tmp + "' for writing");
    f.write(body.data(), static_cast<std::streamsize>(cap));
    f.flush();
    if (!f) return fail("write to '" + tmp + "' failed");
  }
  if (inj_short || inj_fsync) {
    // Short write: the torn temp file stays behind, the target does not
    // change — exactly what a mid-write device error leaves on disk.
    return fail("write '" + path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
  if (inj_rename) {
    return fail("rename '" + tmp + "' -> '" + path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return true;
#else
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("cannot open '" + tmp + "' for writing");
  std::size_t off = 0;
  while (off < cap) {
    const ssize_t n = ::write(fd, body.data() + off, cap - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail("write to '" + tmp + "' failed");
    }
    off += static_cast<std::size_t>(n);
  }
  if (inj_short) {
    // Short write: leave the torn temp file behind for postmortems; the
    // target file is untouched because the rename never happens.
    ::close(fd);
    return fail("write '" + path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
  if (inj_fsync || (fsync_file && ::fsync(fd) != 0)) {
    // Durability refused: data may sit in the page cache, but the protocol
    // cannot promise it survives a power cut — the write must fail and the
    // previous target content stays the published truth.
    ::close(fd);
    ::unlink(tmp.c_str());
    if (inj_fsync) {
      return fail("fsync of '" + tmp + "' failed (injected " +
                  fault->last_fault_name() + ")");
    }
    return fail("fsync of '" + tmp + "' failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail("close of '" + tmp + "' failed");
  }
  if (inj_rename) {
    // The fully written, fsynced temp file exists but was never published:
    // the one crash window the atomic protocol leaves, now reproducible.
    return fail("rename '" + tmp + "' -> '" + path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return true;
#endif
}

}  // namespace domino
