#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace domino {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string FormatCdfRow(const std::string& label,
                         const std::vector<double>& quantiles,
                         const std::vector<double>& points,
                         const std::string& unit) {
  std::ostringstream os;
  os << label << ":";
  for (std::size_t i = 0; i < quantiles.size() && i < points.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " p%g=%.1f%s", quantiles[i], points[i],
                  unit.c_str());
    os << buf;
  }
  return os.str();
}

}  // namespace domino
