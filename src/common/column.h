// A single contiguous typed column — the storage primitive behind both the
// raw telemetry streams (telemetry/columns.h) and TimeSeries.
//
// A Column<T> either owns its elements (a vector) or *borrows* a read-only
// span whose lifetime is pinned by a shared keepalive — an mmap'd binary
// trace file, or a sibling column (several series sharing one time axis).
// Borrowed columns materialize on first mutation (copy-on-write at column
// granularity), so loaded-and-only-read data is never copied.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace domino {

template <typename T>
class Column {
 public:
  Column() = default;

  [[nodiscard]] std::size_t size() const {
    return borrowed_ ? bsize_ : own_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const T* data() const {
    return borrowed_ ? bdata_ : own_.data();
  }
  [[nodiscard]] std::span<const T> span() const { return {data(), size()}; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] const T& front() const { return data()[0]; }
  [[nodiscard]] const T& back() const { return data()[size() - 1]; }
  [[nodiscard]] bool borrowed() const { return borrowed_; }

  void clear() {
    ReleaseBorrow();
    own_.clear();
  }
  void reserve(std::size_t n) {
    EnsureOwned();
    own_.reserve(n);
  }
  void push_back(T v) {
    EnsureOwned();
    own_.push_back(std::move(v));
  }
  void Set(std::size_t i, T v) {
    EnsureOwned();
    own_[i] = std::move(v);
  }
  /// Whole-column mutable access (materializes a borrowed column).
  [[nodiscard]] std::span<T> mut() {
    EnsureOwned();
    return {own_.data(), own_.size()};
  }
  void Assign(std::vector<T> v) {
    ReleaseBorrow();
    own_ = std::move(v);
  }

  /// Borrows `n` elements at `p`; `keepalive` pins the backing buffer (an
  /// mmap'd file, a decoded arena, or a sibling column's storage).
  /// Zero-copy until the first mutation.
  void Adopt(std::shared_ptr<const void> keepalive, const T* p,
             std::size_t n) {
    own_.clear();
    keepalive_ = std::move(keepalive);
    bdata_ = p;
    bsize_ = n;
    borrowed_ = true;
  }

  /// Borrows a shared vector outright (several columns sharing one axis).
  void Adopt(std::shared_ptr<const std::vector<T>> shared) {
    const T* p = shared->data();
    std::size_t n = shared->size();
    Adopt(std::shared_ptr<const void>(std::move(shared)), p, n);
  }

  /// In-place compaction: keeps element i iff keep[i] != 0.
  void Keep(const std::vector<unsigned char>& keep) {
    assert(keep.size() == size());
    EnsureOwned();
    std::size_t w = 0;
    for (std::size_t i = 0; i < own_.size(); ++i) {
      if (keep[i]) {
        if (w != i) own_[w] = std::move(own_[i]);
        ++w;
      }
    }
    own_.resize(w);
  }

  /// Reorders the column to data[perm[0]], data[perm[1]], ...
  void Gather(const std::vector<std::uint32_t>& perm) {
    std::vector<T> out;
    out.reserve(perm.size());
    const T* d = data();
    for (std::uint32_t i : perm) out.push_back(d[i]);
    Assign(std::move(out));
  }

  friend bool operator==(const Column& a, const Column& b) {
    return std::equal(a.data(), a.data() + a.size(), b.data(),
                      b.data() + b.size());
  }

 private:
  void EnsureOwned() {
    if (!borrowed_) return;
    own_.assign(bdata_, bdata_ + bsize_);
    ReleaseBorrow();
  }
  void ReleaseBorrow() {
    keepalive_.reset();
    bdata_ = nullptr;
    bsize_ = 0;
    borrowed_ = false;
  }

  std::vector<T> own_;
  std::shared_ptr<const void> keepalive_;
  const T* bdata_ = nullptr;
  std::size_t bsize_ = 0;
  bool borrowed_ = false;
};

}  // namespace domino
