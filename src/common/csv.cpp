#include "common/csv.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace domino {

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

bool ParseCsvLineTo(const std::string& line, std::vector<std::string>& cells,
                    std::size_t max_fields) {
  cells.clear();
  std::string cur;
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quote) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quote = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quote = true;
    } else if (c == ',') {
      if (cells.size() + 1 >= max_fields) return false;
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quote) return false;
  cells.push_back(std::move(cur));
  return true;
}

bool ParseCsvLineViews(std::string& line, std::vector<std::string_view>& cells,
                       std::size_t max_fields) {
  cells.clear();
  if (line.find('"') == std::string::npos) {
    // Fast path (every machine-written telemetry row): split on commas.
    std::string_view rest(line);
    for (;;) {
      std::size_t comma = rest.find(',');
      if (comma == std::string_view::npos) {
        cells.push_back(rest);
        return true;
      }
      if (cells.size() + 1 >= max_fields) return false;
      cells.push_back(rest.substr(0, comma));
      rest.remove_prefix(comma + 1);
    }
  }
  // Quoted path: unescape into the line buffer itself. Content is only
  // ever removed (quotes, escape doubling), so the write cursor w trails
  // the read cursor i and never clobbers unread input.
  char* buf = line.data();
  std::size_t w = 0;
  std::size_t cell_start = 0;
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = buf[i];
    if (in_quote) {
      if (c == '"') {
        if (i + 1 < line.size() && buf[i + 1] == '"') {
          buf[w++] = '"';
          ++i;
        } else {
          in_quote = false;
        }
      } else {
        buf[w++] = c;
      }
    } else if (c == '"') {
      in_quote = true;
    } else if (c == ',') {
      if (cells.size() + 1 >= max_fields) return false;
      cells.emplace_back(buf + cell_start, w - cell_start);
      cell_start = w;
    } else {
      buf[w++] = c;
    }
  }
  if (in_quote) return false;
  cells.emplace_back(buf + cell_start, w - cell_start);
  return true;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  if (!ParseCsvLineTo(line, cells,
                      std::numeric_limits<std::size_t>::max())) {
    throw std::invalid_argument("ParseCsvLine: unterminated quote");
  }
  return cells;
}

std::vector<std::vector<std::string>> ReadCsv(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

std::vector<std::vector<std::string>> ReadCsv(std::istream& is,
                                              const InputLimits& lim,
                                              CsvReadStatus* status) {
  CsvReadStatus local;
  CsvReadStatus& st = status != nullptr ? *status : local;
  std::vector<std::vector<std::string>> rows;
  std::string line;
  for (;;) {
    LineRead lr = BoundedGetline(is, line, lim.max_line_bytes);
    if (!lr.got) break;
    if (lr.truncated) {
      ++st.rows_dropped;
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (rows.size() >= lim.max_records) {
      st.row_budget_hit = true;
      break;
    }
    std::vector<std::string> cells;
    if (!ParseCsvLineTo(line, cells, lim.max_fields)) {
      ++st.rows_dropped;
      continue;
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

}  // namespace domino
