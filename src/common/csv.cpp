#include "common/csv.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace domino {

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

bool ParseCsvLineTo(const std::string& line, std::vector<std::string>& cells,
                    std::size_t max_fields) {
  cells.clear();
  std::string cur;
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quote) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quote = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quote = true;
    } else if (c == ',') {
      if (cells.size() + 1 >= max_fields) return false;
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quote) return false;
  cells.push_back(std::move(cur));
  return true;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  if (!ParseCsvLineTo(line, cells,
                      std::numeric_limits<std::size_t>::max())) {
    throw std::invalid_argument("ParseCsvLine: unterminated quote");
  }
  return cells;
}

std::vector<std::vector<std::string>> ReadCsv(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

std::vector<std::vector<std::string>> ReadCsv(std::istream& is,
                                              const InputLimits& lim,
                                              CsvReadStatus* status) {
  CsvReadStatus local;
  CsvReadStatus& st = status != nullptr ? *status : local;
  std::vector<std::vector<std::string>> rows;
  std::string line;
  for (;;) {
    LineRead lr = BoundedGetline(is, line, lim.max_line_bytes);
    if (!lr.got) break;
    if (lr.truncated) {
      ++st.rows_dropped;
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (rows.size() >= lim.max_records) {
      st.row_budget_hit = true;
      break;
    }
    std::vector<std::string> cells;
    if (!ParseCsvLineTo(line, cells, lim.max_fields)) {
      ++st.rows_dropped;
      continue;
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

}  // namespace domino
