#include "common/csv.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace domino {

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quote) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quote = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quote = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quote) {
    throw std::invalid_argument("ParseCsvLine: unterminated quote");
  }
  cells.push_back(std::move(cur));
  return cells;
}

std::vector<std::vector<std::string>> ReadCsv(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

}  // namespace domino
