#include "common/event_queue.h"

#include <stdexcept>
#include <utility>

namespace domino {

void EventQueue::ScheduleAt(Time t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue::ScheduleAt: time in the past");
  }
  heap_.push(Entry{t, next_seq_++, std::move(cb)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (std::function copy is cheap enough
  // at simulation scale).
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.time;
  e.cb();
  return true;
}

void EventQueue::RunUntil(Time end) {
  while (!heap_.empty() && heap_.top().time <= end) {
    RunOne();
  }
  if (now_ < end) now_ = end;
}

}  // namespace domino
