// Shared-filesystem lease with fencing tokens — the coordination primitive
// for the cross-box sharded fleet.
//
// N `domino serve` daemons on different boxes share one state root over a
// shared filesystem (NFS or local). Each unit of work (a session) is owned
// by at most one daemon at a time, enforced by a lease directory:
//
//   <lease_dir>/lease        the lease itself — IMMUTABLE once published
//   <lease_dir>/hb-e<N>      heartbeat file for fencing token N
//   <lease_dir>/epochs/e<N>  token allocator (exclusive mkdir per token)
//   <lease_dir>/stale-e<N>   renamed-away stale lease (stealer N's debris)
//
// The only primitives assumed of the filesystem are atomic rename(2),
// atomic link(2) (fails with EEXIST if the target exists), and atomic
// exclusive mkdir(2) — all of which NFSv3+ and every local filesystem
// provide. Notably NOT assumed: O_EXCL open (broken on old NFS), flock,
// or any mtime/clock agreement between boxes beyond coarse wall-clock.
//
// Protocol invariants:
//
//  * Fencing tokens are allocated by exclusive `mkdir epochs/e<N>` (scan
//    max, try max+1, bump on collision), so they are unique and strictly
//    increasing over the life of the lease directory. Every published
//    lease carries the token of its owner.
//  * The lease file is published with temp-write + fsync + link(tmp,
//    lease). link fails if a lease already exists — there is exactly one
//    winner — and the file is never modified afterwards. Renewals go to a
//    SEPARATE file `hb-e<token>` that only that token's owner ever writes,
//    so a zombie's heartbeat can never clobber a stolen lease.
//  * A reader judges staleness by: read lease -> token T -> read hb-e<T>'s
//    renewed_unix_ms (falling back to the lease's own timestamp if no
//    heartbeat exists yet). Stale past the TTL means the owner's box is
//    presumed dead.
//  * Stealing is `rename(lease, stale-e<S>)` where S is the stealer's own
//    fresh token — unique target, so of two concurrent stealers exactly
//    one rename succeeds — followed by the normal publish. The stolen
//    owner discovers the loss on its next Renew (token mismatch) and every
//    fenced writer discovers it via LeaseTokenCurrent() before publishing
//    any state.
//  * A holder garbage-collects debris (epochs/hb/stale files) with tokens
//    strictly below its own; epoch directories of the CURRENT token are
//    never removed, preserving monotonicity.
//
// Known residual windows (by design, documented in DESIGN.md §15): between
// a zombie's last fence check and its rename-publish there is a bounded
// TOCTOU window; every published artifact is temp+rename so the loser's
// write either fully replaces or never lands — it cannot tear — and the
// zombie's next fence check turns it into a recorded `fenced` outcome.
#pragma once

#include <cstdint>
#include <string>

#include "common/diskfault.h"

namespace domino {

/// One parsed lease or heartbeat record. `seq` counts renewals (0 in the
/// lease file itself); `renewed_unix_ms` is the writer's wall clock.
struct LeaseInfo {
  std::string owner;
  std::uint64_t token = 0;
  std::uint64_t seq = 0;
  std::int64_t renewed_unix_ms = 0;
};

/// Serializes a lease record in the repo's checksummed line format
/// ("domino-lease v1" ... "checksum <hex64>"). The owner must be a single
/// line; embedded newlines are rejected at parse time.
std::string FormatLease(const LeaseInfo& info);

/// Parses FormatLease output. Checksum is verified first (a torn file is
/// rejected before any field is trusted) and unknown keys are refused.
bool ParseLease(const std::string& text, LeaseInfo* out, std::string* error);

enum class LeaseAcquire {
  kAcquired,  ///< this process now holds the lease
  kHeld,      ///< a live owner holds it (or won a concurrent race)
  kIoError,   ///< filesystem failure (possibly injected); not held
};

enum class LeaseRenew {
  kRenewed,  ///< heartbeat published; still the owner
  kLost,     ///< the lease was stolen (or vanished); no longer the owner
  kIoError,  ///< heartbeat write failed; still nominally the owner
};

/// One lease directory, from one prospective owner's point of view.
/// Thread-compatible, not thread-safe: callers serialize access (the
/// ShardCoordinator holds one LeaseFile per session behind its mutex).
class LeaseFile {
 public:
  LeaseFile(std::string lease_dir, std::string owner);

  /// Tries to take the lease: fresh acquire if absent, steal if the
  /// current holder's heartbeat is older than `stale_ttl_ms`, kHeld if a
  /// live owner exists. `now_ms` is the caller's unix-ms clock (injected
  /// for testability). The publish (temp write + fsync + link) counts as
  /// one guarded write against `fault`, failing at the stage the fault
  /// kind names. Idempotent while held.
  LeaseAcquire TryAcquire(std::int64_t now_ms, std::int64_t stale_ttl_ms,
                          DiskFaultInjector* fault, std::string* error);

  /// Publishes a heartbeat to hb-e<token> after re-reading the lease. A
  /// token mismatch (we were stolen) returns kLost and drops held().
  /// kIoError keeps held(): a transient write failure does not forfeit
  /// ownership — the staleness clock just keeps running.
  LeaseRenew Renew(std::int64_t now_ms, DiskFaultInjector* fault,
                   std::string* error);

  /// Removes the lease + heartbeat if we still own them (token re-checked
  /// first; if stolen this is a no-op). The epoch directory of our token
  /// is deliberately left behind so tokens stay monotonic. Drops held().
  bool Release(std::string* error);

  /// Forgets ownership without touching disk — for a lease known to be
  /// lost (fenced outcome) where the new owner's files must not be
  /// disturbed.
  void Forget() { held_ = false; }

  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] const LeaseInfo& info() const { return info_; }
  [[nodiscard]] const std::string& lease_dir() const { return lease_dir_; }

 private:
  std::string lease_dir_;
  std::string owner_;
  bool held_ = false;
  LeaseInfo info_;
};

/// Reads the current lease (if any), merging in the newest matching
/// heartbeat so `renewed_unix_ms` reflects the last renewal, not the
/// acquisition. Returns false if no valid lease is published.
bool InspectLease(const std::string& lease_dir, LeaseInfo* out);

/// Fence check: true iff a valid lease is published and carries exactly
/// `token`. A missing or corrupt lease reads as fenced (false) — writers
/// must prove ownership, not assume it.
bool LeaseTokenCurrent(const std::string& lease_dir, std::uint64_t token);

}  // namespace domino
