// Plain-text table rendering for the bench harnesses. Each bench prints the
// same rows/series the paper's table or figure reports; this keeps the
// formatting consistent and readable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace domino {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; it may have fewer cells than the header (padded blank).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  /// Formats a ratio as a percentage string, e.g. 0.123 -> "12.3%".
  static std::string Pct(double ratio, int precision = 1);

  /// Renders the table with aligned columns and a separator under the header.
  [[nodiscard]] std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a one-line "series" row used for figure reproductions:
/// `label: q50=12.3 q90=45.6 ...`
std::string FormatCdfRow(const std::string& label,
                         const std::vector<double>& quantiles,
                         const std::vector<double>& points,
                         const std::string& unit);

}  // namespace domino
