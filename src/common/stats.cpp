#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace domino {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double s2 = 0;
  for (double v : values) s2 += (v - m) * (v - m);
  return std::sqrt(s2 / static_cast<double>(values.size() - 1));
}

CdfSummary MakeCdf(std::vector<double> values, std::vector<double> quantiles) {
  if (quantiles.empty()) {
    quantiles = {1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9};
  }
  std::sort(values.begin(), values.end());
  CdfSummary out;
  out.quantiles = quantiles;
  out.points.reserve(quantiles.size());
  for (double q : quantiles) out.points.push_back(PercentileSorted(values, q));
  return out;
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double LinearSlope(const std::vector<double>& x, const std::vector<double>& y) {
  std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

}  // namespace domino
