// Time-series container used by both the simulator's telemetry emitters and
// the Domino analysis pipeline.
//
// Storage is columnar (SoA): one contiguous Time column and one contiguous
// value column, rather than an array of (time, value) structs. Every window
// aggregate the 20 event conditions and the 36-dim feature extraction run —
// Min/Max/Sum/CountIf/trend scans — iterates over the contiguous value
// column only, which the compiler auto-vectorizes and which halves the
// bytes touched versus interleaved pairs.
//
// A TimeSeries<T> is an append-only sequence of (Time, T) samples in
// non-decreasing time order. WindowView is a cheap, non-owning slice of
// both columns restricted to a [begin, end) interval — the unit the Domino
// sliding window operates on (paper §4.2: W = 5 s, Δt = 0.5 s). Views are
// zero-copy: they alias the parent's columns and are invalidated by
// appends.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <iterator>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/column.h"
#include "common/time.h"

namespace domino {

template <typename T>
struct Sample {
  Time time;
  T value;
};

template <typename T>
class WindowView;

/// Random-access iterator over parallel (time, value) columns, yielding
/// Sample<T> by value. Lets range-for and index loops written against the
/// old row layout keep working unchanged.
template <typename T>
class SampleIterator {
 public:
  using iterator_category = std::random_access_iterator_tag;
  using value_type = Sample<T>;
  using difference_type = std::ptrdiff_t;
  using pointer = const Sample<T>*;
  using reference = Sample<T>;

  SampleIterator() = default;
  SampleIterator(const Time* t, const T* v) : t_(t), v_(v) {}

  Sample<T> operator*() const { return Sample<T>{*t_, *v_}; }
  Sample<T> operator[](difference_type i) const {
    return Sample<T>{t_[i], v_[i]};
  }

  SampleIterator& operator++() { ++t_; ++v_; return *this; }
  SampleIterator operator++(int) { auto c = *this; ++*this; return c; }
  SampleIterator& operator--() { --t_; --v_; return *this; }
  SampleIterator operator--(int) { auto c = *this; --*this; return c; }
  SampleIterator& operator+=(difference_type n) { t_ += n; v_ += n; return *this; }
  SampleIterator& operator-=(difference_type n) { t_ -= n; v_ -= n; return *this; }
  friend SampleIterator operator+(SampleIterator it, difference_type n) {
    return it += n;
  }
  friend SampleIterator operator+(difference_type n, SampleIterator it) {
    return it += n;
  }
  friend SampleIterator operator-(SampleIterator it, difference_type n) {
    return it -= n;
  }
  friend difference_type operator-(SampleIterator a, SampleIterator b) {
    return a.t_ - b.t_;
  }
  friend bool operator==(SampleIterator a, SampleIterator b) {
    return a.t_ == b.t_;
  }
  friend auto operator<=>(SampleIterator a, SampleIterator b) {
    return a.t_ <=> b.t_;
  }

 private:
  const Time* t_ = nullptr;
  const T* v_ = nullptr;
};

template <typename T>
class TimeSeries {
 public:
  using value_type = Sample<T>;

  /// Appends a sample. Times must be non-decreasing.
  void Push(Time t, T value) {
    if (!times_.empty() && t < times_.back()) {
      throw std::invalid_argument("TimeSeries::Push: time went backwards");
    }
    times_.push_back(t);
    values_.push_back(std::move(value));
  }

  /// Appends without the monotonicity check — for bulk builders that
  /// guarantee order themselves (BuildDerivedTrace's column sweeps).
  void AppendUnchecked(Time t, T value) {
    times_.push_back(t);
    values_.push_back(std::move(value));
  }

  /// Pre-sizes both columns (exact-count reservation in bulk builders).
  void Reserve(std::size_t n) {
    times_.reserve(n);
    values_.reserve(n);
  }

  /// Adopts whole columns at once. `times` must be non-decreasing (checked
  /// only by assert: callers are bulk builders that guarantee it).
  void AssignColumns(std::vector<Time> times, std::vector<T> values) {
    assert(times.size() == values.size());
    assert(std::is_sorted(times.begin(), times.end()));
    times_.Assign(std::move(times));
    values_.Assign(std::move(values));
  }

  /// Adopts a *shared* time axis plus an owned value column. Several sibling
  /// series with identical timestamps (the per-DCI "ours" series, the nine
  /// client stats series) alias one Time buffer instead of copying it per
  /// series; the Column keepalive pins it. Copy-on-write on mutation.
  void AdoptSharedTimes(std::shared_ptr<const std::vector<Time>> times,
                        std::vector<T> values) {
    assert(times && times->size() == values.size());
    assert(std::is_sorted(times->begin(), times->end()));
    values_.Assign(std::move(values));
    times_.Adopt(std::move(times));
  }

  /// Zero-copy adoption of both columns from a pinned backing buffer — a
  /// derived-trace arena or an mmap'd binary trace file. The series borrows
  /// the ranges; `keepalive` owns them. Sibling series may pass the same
  /// time pointer to share one axis. Copy-on-write on mutation.
  void AdoptColumns(const std::shared_ptr<const void>& keepalive,
                    const Time* t, const T* v, std::size_t n) {
    assert(std::is_sorted(t, t + n));
    times_.Adopt(keepalive, t, n);
    values_.Adopt(keepalive, v, n);
  }

  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] Sample<T> operator[](std::size_t i) const {
    return Sample<T>{times_[i], values_[i]};
  }
  [[nodiscard]] Sample<T> front() const {
    return Sample<T>{times_.front(), values_.front()};
  }
  [[nodiscard]] Sample<T> back() const {
    return Sample<T>{times_.back(), values_.back()};
  }
  [[nodiscard]] Time TimeAt(std::size_t i) const { return times_[i]; }
  [[nodiscard]] const T& ValueAtIndex(std::size_t i) const {
    return values_[i];
  }

  /// Contiguous column access (zero-copy).
  [[nodiscard]] std::span<const Time> times() const { return times_.span(); }
  [[nodiscard]] std::span<const T> values() const { return values_.span(); }

  [[nodiscard]] SampleIterator<T> begin() const {
    return {times_.data(), values_.data()};
  }
  [[nodiscard]] SampleIterator<T> end() const {
    return {times_.data() + times_.size(), values_.data() + values_.size()};
  }

  /// True when the time axis is borrowed from a shared buffer (mmap'd file
  /// or a sibling series) rather than owned by this series.
  [[nodiscard]] bool shares_times() const { return times_.borrowed(); }

  /// Returns the non-owning view of samples with time in [begin, end).
  [[nodiscard]] WindowView<T> Window(Time begin, Time end) const {
    std::size_t lo = LowerBound(begin);
    std::size_t hi = LowerBound(end, lo);
    return ViewRange(lo, hi);
  }

  /// View of samples by index range [lo, hi); bounds must be valid.
  [[nodiscard]] WindowView<T> ViewRange(std::size_t lo, std::size_t hi) const {
    // vector::data() is valid even when empty.
    return WindowView<T>(times_.data() + lo, values_.data() + lo, hi - lo);
  }

  /// Index of the first sample with time >= t, searching from `from`.
  [[nodiscard]] std::size_t LowerBound(Time t, std::size_t from = 0) const {
    const Time* base = times_.data();
    const Time* it = std::lower_bound(base + from, base + times_.size(), t);
    return static_cast<std::size_t>(it - base);
  }

  /// Value of the last sample at or before `t`; `fallback` if none exists.
  [[nodiscard]] T ValueAt(Time t, T fallback = T{}) const {
    const Time* base = times_.data();
    const Time* it = std::upper_bound(base, base + times_.size(), t);
    if (it == base) return fallback;
    return values_[static_cast<std::size_t>(it - base) - 1];
  }

  void clear() {
    times_.clear();
    values_.clear();
  }

 private:
  Column<Time> times_;
  Column<T> values_;
};

/// Non-owning columnar slice of a TimeSeries. Invalidated by appends to the
/// parent. Aggregates scan the contiguous value column.
template <typename T>
class WindowView {
 public:
  WindowView() = default;
  WindowView(const Time* times, const T* values, std::size_t n)
      : times_(times), values_(values), n_(n) {}

  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Sample<T> operator[](std::size_t i) const {
    return Sample<T>{times_[i], values_[i]};
  }
  [[nodiscard]] std::span<const Time> times() const { return {times_, n_}; }
  [[nodiscard]] std::span<const T> values() const { return {values_, n_}; }
  [[nodiscard]] SampleIterator<T> begin() const { return {times_, values_}; }
  [[nodiscard]] SampleIterator<T> end() const {
    return {times_ + n_, values_ + n_};
  }

  /// Minimum / maximum sample value; requires a non-empty window.
  [[nodiscard]] T Min() const {
    assert(!empty());
    T best = values_[0];
    for (std::size_t i = 1; i < n_; ++i) {
      if (values_[i] < best) best = values_[i];
    }
    return best;
  }
  [[nodiscard]] T Max() const {
    assert(!empty());
    T best = values_[0];
    for (std::size_t i = 1; i < n_; ++i) {
      if (values_[i] > best) best = values_[i];
    }
    return best;
  }
  /// Time of the first minimal / maximal sample.
  [[nodiscard]] Time ArgMin() const { return times_[MinIndex()]; }
  [[nodiscard]] Time ArgMax() const { return times_[MaxIndex()]; }

  [[nodiscard]] double Mean() const {
    assert(!empty());
    return Sum() / static_cast<double>(n_);
  }

  [[nodiscard]] double Sum() const {
    double sum = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      sum += static_cast<double>(values_[i]);
    }
    return sum;
  }

  /// True if any sample satisfies `pred(value)`.
  template <typename Pred>
  [[nodiscard]] bool Any(Pred pred) const {
    for (std::size_t i = 0; i < n_; ++i) {
      if (pred(values_[i])) return true;
    }
    return false;
  }

  /// Number of samples satisfying `pred(value)`.
  template <typename Pred>
  [[nodiscard]] std::size_t CountIf(Pred pred) const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (pred(values_[i])) ++n;
    }
    return n;
  }

  /// True if there exist consecutive samples with s[i+1] < s[i] (a downtrend
  /// step), the primitive behind the paper's "there is a downtrend" events.
  [[nodiscard]] bool HasDecreasingStep() const {
    for (std::size_t i = 0; i + 1 < n_; ++i) {
      if (values_[i + 1] < values_[i]) return true;
    }
    return false;
  }
  [[nodiscard]] bool HasIncreasingStep() const {
    for (std::size_t i = 0; i + 1 < n_; ++i) {
      if (values_[i + 1] > values_[i]) return true;
    }
    return false;
  }

 private:
  [[nodiscard]] std::size_t MinIndex() const {
    assert(!empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < n_; ++i) {
      if (values_[i] < values_[best]) best = i;
    }
    return best;
  }
  [[nodiscard]] std::size_t MaxIndex() const {
    assert(!empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < n_; ++i) {
      if (values_[i] > values_[best]) best = i;
    }
    return best;
  }

  const Time* times_ = nullptr;
  const T* values_ = nullptr;
  std::size_t n_ = 0;
};

/// Averages `view` into buckets of `bucket` samples each (the paper's
/// "windowed" 10-sample averaging for trend detection, Appendix D #9/#11/#12).
/// The trailing partial bucket, if any, is dropped.
template <typename T>
std::vector<double> BucketMeans(const WindowView<T>& view,
                                std::size_t bucket) {
  std::vector<double> out;
  if (bucket == 0) return out;
  std::span<const T> v = view.values();
  std::size_t full = v.size() / bucket;
  out.reserve(full);
  for (std::size_t k = 0; k < full; ++k) {
    double sum = 0;
    for (std::size_t i = k * bucket; i < (k + 1) * bucket; ++i) {
      sum += static_cast<double>(v[i]);
    }
    out.push_back(sum / static_cast<double>(bucket));
  }
  return out;
}

/// Buckets `view` by fixed time intervals of `width`, returning the mean of
/// each non-empty bucket (used for the 50 ms MCS grouping, Appendix D #16).
template <typename T>
std::vector<double> TimeBucketMeans(const WindowView<T>& view, Time window_begin,
                                    Duration width) {
  std::vector<double> out;
  if (view.empty() || width.micros() <= 0) return out;
  std::span<const Time> t = view.times();
  std::span<const T> v = view.values();
  std::size_t i = 0;
  Time edge = window_begin;
  while (i < v.size()) {
    Time next = edge + width;
    double sum = 0;
    std::size_t n = 0;
    while (i < v.size() && t[i] < next) {
      sum += static_cast<double>(v[i]);
      ++n;
      ++i;
    }
    if (n > 0) out.push_back(sum / static_cast<double>(n));
    edge = next;
  }
  return out;
}

}  // namespace domino
