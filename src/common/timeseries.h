// Time-series container used by both the simulator's telemetry emitters and
// the Domino analysis pipeline.
//
// A TimeSeries<T> is an append-only sequence of (Time, T) samples in
// non-decreasing time order. WindowView is a cheap, non-owning slice of a
// series restricted to a [begin, end) interval — the unit the Domino sliding
// window operates on (paper §4.2: W = 5 s, Δt = 0.5 s).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/time.h"

namespace domino {

template <typename T>
struct Sample {
  Time time;
  T value;
};

template <typename T>
class WindowView;

template <typename T>
class TimeSeries {
 public:
  using value_type = Sample<T>;

  /// Appends a sample. Times must be non-decreasing.
  void Push(Time t, T value) {
    if (!samples_.empty() && t < samples_.back().time) {
      throw std::invalid_argument("TimeSeries::Push: time went backwards");
    }
    samples_.push_back({t, std::move(value)});
  }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const Sample<T>& operator[](std::size_t i) const {
    return samples_[i];
  }
  [[nodiscard]] const Sample<T>& front() const { return samples_.front(); }
  [[nodiscard]] const Sample<T>& back() const { return samples_.back(); }

  [[nodiscard]] auto begin() const { return samples_.begin(); }
  [[nodiscard]] auto end() const { return samples_.end(); }

  /// Returns the non-owning view of samples with time in [begin, end).
  [[nodiscard]] WindowView<T> Window(Time begin, Time end) const {
    // vector::data() is valid even when empty, unlike &*begin().
    std::size_t lo = LowerBound(begin);
    std::size_t hi = LowerBound(end, lo);
    return ViewRange(lo, hi);
  }

  /// View of samples by index range [lo, hi); bounds must be valid.
  [[nodiscard]] WindowView<T> ViewRange(std::size_t lo, std::size_t hi) const {
    return WindowView<T>(
        std::span<const Sample<T>>(samples_.data(), samples_.size())
            .subspan(lo, hi - lo));
  }

  /// Index of the first sample with time >= t, searching from `from`.
  [[nodiscard]] std::size_t LowerBound(Time t, std::size_t from = 0) const {
    auto it = std::lower_bound(
        samples_.begin() + static_cast<std::ptrdiff_t>(from), samples_.end(),
        t, [](const Sample<T>& s, Time tt) { return s.time < tt; });
    return static_cast<std::size_t>(it - samples_.begin());
  }

  /// Value of the last sample at or before `t`; `fallback` if none exists.
  [[nodiscard]] T ValueAt(Time t, T fallback = T{}) const {
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](Time tt, const Sample<T>& s) { return tt < s.time; });
    if (it == samples_.begin()) return fallback;
    return std::prev(it)->value;
  }

  void clear() { samples_.clear(); }

 private:
  std::vector<Sample<T>> samples_;
};

/// Non-owning slice of a TimeSeries. Invalidated by appends to the parent.
template <typename T>
class WindowView {
 public:
  WindowView() = default;
  explicit WindowView(std::span<const Sample<T>> span) : span_(span) {}

  [[nodiscard]] bool empty() const { return span_.empty(); }
  [[nodiscard]] std::size_t size() const { return span_.size(); }
  [[nodiscard]] const Sample<T>& operator[](std::size_t i) const {
    return span_[i];
  }
  [[nodiscard]] auto begin() const { return span_.begin(); }
  [[nodiscard]] auto end() const { return span_.end(); }

  /// Minimum / maximum sample value; requires a non-empty window.
  [[nodiscard]] T Min() const {
    assert(!empty());
    return std::min_element(begin(), end(), ValueLess)->value;
  }
  [[nodiscard]] T Max() const {
    assert(!empty());
    return std::max_element(begin(), end(), ValueLess)->value;
  }
  /// Time of the first minimal / maximal sample.
  [[nodiscard]] Time ArgMin() const {
    assert(!empty());
    return std::min_element(begin(), end(), ValueLess)->time;
  }
  [[nodiscard]] Time ArgMax() const {
    assert(!empty());
    return std::max_element(begin(), end(), ValueLess)->time;
  }

  [[nodiscard]] double Mean() const {
    assert(!empty());
    double sum = 0;
    for (const auto& s : span_) sum += static_cast<double>(s.value);
    return sum / static_cast<double>(span_.size());
  }

  [[nodiscard]] double Sum() const {
    double sum = 0;
    for (const auto& s : span_) sum += static_cast<double>(s.value);
    return sum;
  }

  /// True if any sample satisfies `pred(value)`.
  template <typename Pred>
  [[nodiscard]] bool Any(Pred pred) const {
    return std::any_of(begin(), end(),
                       [&](const Sample<T>& s) { return pred(s.value); });
  }

  /// Number of samples satisfying `pred(value)`.
  template <typename Pred>
  [[nodiscard]] std::size_t CountIf(Pred pred) const {
    return static_cast<std::size_t>(std::count_if(
        begin(), end(), [&](const Sample<T>& s) { return pred(s.value); }));
  }

  /// True if there exist consecutive samples with s[i+1] < s[i] (a downtrend
  /// step), the primitive behind the paper's "there is a downtrend" events.
  [[nodiscard]] bool HasDecreasingStep() const {
    for (std::size_t i = 0; i + 1 < span_.size(); ++i) {
      if (span_[i + 1].value < span_[i].value) return true;
    }
    return false;
  }
  [[nodiscard]] bool HasIncreasingStep() const {
    for (std::size_t i = 0; i + 1 < span_.size(); ++i) {
      if (span_[i + 1].value > span_[i].value) return true;
    }
    return false;
  }

 private:
  static bool ValueLess(const Sample<T>& a, const Sample<T>& b) {
    return a.value < b.value;
  }

  std::span<const Sample<T>> span_;
};

/// Averages `view` into buckets of `bucket` samples each (the paper's
/// "windowed" 10-sample averaging for trend detection, Appendix D #9/#11/#12).
/// The trailing partial bucket, if any, is dropped.
template <typename T>
std::vector<double> BucketMeans(const WindowView<T>& view,
                                std::size_t bucket) {
  std::vector<double> out;
  if (bucket == 0) return out;
  std::size_t full = view.size() / bucket;
  out.reserve(full);
  for (std::size_t k = 0; k < full; ++k) {
    double sum = 0;
    for (std::size_t i = k * bucket; i < (k + 1) * bucket; ++i) {
      sum += static_cast<double>(view[i].value);
    }
    out.push_back(sum / static_cast<double>(bucket));
  }
  return out;
}

/// Buckets `view` by fixed time intervals of `width`, returning the mean of
/// each non-empty bucket (used for the 50 ms MCS grouping, Appendix D #16).
template <typename T>
std::vector<double> TimeBucketMeans(const WindowView<T>& view, Time window_begin,
                                    Duration width) {
  std::vector<double> out;
  if (view.empty() || width.micros() <= 0) return out;
  std::size_t i = 0;
  Time edge = window_begin;
  while (i < view.size()) {
    Time next = edge + width;
    double sum = 0;
    std::size_t n = 0;
    while (i < view.size() && view[i].time < next) {
      sum += static_cast<double>(view[i].value);
      ++n;
      ++i;
    }
    if (n > 0) out.push_back(sum / static_cast<double>(n));
    edge = next;
  }
  return out;
}

}  // namespace domino
