// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// check used by the binary telemetry wire format. Table-driven, no external
// dependencies.
#pragma once

#include <cstddef>
#include <cstdint>

namespace domino {

/// Computes the CRC-32 of `n` bytes at `data`. Pass a previous result as
/// `seed` to continue a running checksum over discontiguous chunks
/// (Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b))).
std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace domino
