// Strict parsing for every untrusted input surface.
//
// Domino reads bytes it does not control: telemetry CSVs from sniffers and
// gNB logs, config DSL files, live checkpoints, CLI flags. This header is
// the shared defensive layer those readers stand on:
//
//  * Checked number parsing (ParseInt64 / ParseUint64 / ParseFinite and
//    the range-checked *In variants): full-consumption, errno-checked,
//    exception-free. Garbage, overflow, and (for ParseFinite) inf/nan all
//    return false instead of throwing or saturating silently — the caller
//    fails closed with a diagnostic.
//
//  * InputLimits: one budget object naming every resource cap a reader
//    must honour (line bytes, fields per row, records per stream, config
//    bytes, DSL nodes and nesting depth, checkpoint bytes). The defaults
//    are generous enough for multi-hour traces but finite, so hostile
//    input degrades into a typed error instead of unbounded allocation.
//
//  * BoundedGetline: a std::getline replacement that never buffers more
//    than the cap. Over-long lines are consumed (byte-exact accounting for
//    the tailing reader) but only the first `max` bytes are materialized.
//
// Everything here is exception-free by construction so the fuzz harnesses
// in fuzz/ can drive the readers with arbitrary bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace domino {

/// Resource budget for one parse of untrusted input. Every reader that
/// touches external bytes takes one of these (defaulted) and fails closed
/// with a diagnostic when a cap is hit; nothing allocates proportionally
/// to hostile input beyond these bounds.
struct InputLimits {
  /// Longest CSV/checkpoint/config line buffered in memory; longer lines
  /// are consumed but reported as malformed.
  std::size_t max_line_bytes = 1 << 20;  // 1 MiB
  /// Most cells accepted in one CSV row.
  std::size_t max_fields = 1024;
  /// Most data rows ingested per stream (per file) in one load.
  std::size_t max_records = 200'000'000;
  /// Largest config DSL file accepted.
  std::size_t max_config_bytes = 4 << 20;  // 4 MiB
  /// Most event/chain definitions accepted per config.
  std::size_t max_config_defs = 10'000;
  /// Most AST nodes materialized per DSL expression.
  std::size_t max_expr_nodes = 10'000;
  /// Deepest operator/parenthesis nesting per DSL expression. Small enough
  /// that the recursive-descent parser cannot overflow the stack.
  std::size_t max_expr_depth = 64;
  /// Largest live checkpoint file parsed.
  std::size_t max_checkpoint_bytes = 64 << 20;  // 64 MiB
  /// Most repeated-key lines (cause/chain/shed) accepted per checkpoint.
  std::size_t max_checkpoint_entries = 1'000'000;
};

// ---------------------------------------------------------------------------
// Checked number parsing (full consumption, no exceptions)
// ---------------------------------------------------------------------------

/// Strict base-10 signed integer: optional sign, digits, nothing else.
/// False on empty input, trailing garbage, or overflow.
bool ParseInt64(std::string_view s, std::int64_t& out);

/// Strict base-10 unsigned integer: digits only (no sign). False on empty
/// input, trailing garbage, or overflow.
bool ParseUint64(std::string_view s, std::uint64_t& out);

/// Strict finite double: accepts everything strtod does *except* inf/nan
/// spellings and out-of-range magnitudes. False on empty input, trailing
/// garbage, overflow, or a non-finite result.
bool ParseFinite(std::string_view s, double& out);

/// Range-checked variants: value must land in [lo, hi].
bool ParseInt64In(std::string_view s, std::int64_t lo, std::int64_t hi,
                  std::int64_t& out);
bool ParseFiniteIn(std::string_view s, double lo, double hi, double& out);

// ---------------------------------------------------------------------------
// Bounded line reading
// ---------------------------------------------------------------------------

/// Outcome of one BoundedGetline call.
struct LineRead {
  bool got = false;        ///< A line (possibly empty) was read.
  bool hit_eof = false;    ///< Line ended at EOF, not at '\n'.
  bool truncated = false;  ///< Line exceeded `max`; only first `max` bytes
                           ///< are in the output string.
  std::size_t raw_len = 0; ///< Full line length in bytes, excluding the
                           ///< '\n' (exact even when truncated).
};

/// Reads one '\n'-terminated line, buffering at most `max` bytes. The
/// stream is always consumed through the terminating '\n' (or EOF), and
/// `raw_len` counts every consumed byte, so byte-offset bookkeeping stays
/// exact for over-long lines. A trailing '\r' is NOT stripped (callers
/// decide, matching std::getline semantics).
LineRead BoundedGetline(std::istream& is, std::string& line,
                        std::size_t max);

}  // namespace domino
