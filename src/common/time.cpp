#include "common/time.h"

#include <cstdio>

namespace domino {

std::string ToString(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", t.seconds());
  return buf;
}

std::string ToString(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms", d.millis());
  return buf;
}

}  // namespace domino
