#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace domino {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

// Slice-by-8 tables: kTable[0] is the classic byte-at-a-time table;
// kTable[k] advances a byte through k additional zero bytes, letting the
// hot loop fold 8 input bytes per iteration with 8 independent lookups.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kT = MakeTables();

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = kT[7][lo & 0xFFu] ^ kT[6][(lo >> 8) & 0xFFu] ^
          kT[5][(lo >> 16) & 0xFFu] ^ kT[4][lo >> 24] ^ kT[3][hi & 0xFFu] ^
          kT[2][(hi >> 8) & 0xFFu] ^ kT[1][(hi >> 16) & 0xFFu] ^
          kT[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    c = kT[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace domino
