// Time primitives used across the Domino codebase.
//
// All simulation and telemetry timestamps are integer microseconds since the
// start of a session. We use strong types (wrapping int64_t) rather than raw
// integers so that durations and absolute time points cannot be accidentally
// mixed, and so call sites read naturally: `now + Millis(5)`.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace domino {

/// A span of time, in integer microseconds. Negative durations are allowed
/// (useful for clock offsets and signed deltas).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(micros_) / 1e3;
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration{micros_ + o.micros_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{micros_ - o.micros_};
  }
  constexpr Duration operator-() const { return Duration{-micros_}; }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration{micros_ * k};
  }
  constexpr Duration operator/(std::int64_t k) const {
    return Duration{micros_ / k};
  }
  /// Integer ratio of two durations (how many `o` fit in `*this`).
  constexpr std::int64_t operator/(Duration o) const {
    return micros_ / o.micros_;
  }
  constexpr Duration& operator+=(Duration o) {
    micros_ += o.micros_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    micros_ -= o.micros_;
    return *this;
  }

 private:
  std::int64_t micros_ = 0;
};

/// An absolute point on the session timeline, in integer microseconds.
/// Time{0} is the session start.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(micros_) / 1e3;
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Duration d) const {
    return Time{micros_ + d.micros()};
  }
  constexpr Time operator-(Duration d) const {
    return Time{micros_ - d.micros()};
  }
  constexpr Duration operator-(Time o) const {
    return Duration{micros_ - o.micros_};
  }
  constexpr Time& operator+=(Duration d) {
    micros_ += d.micros();
    return *this;
  }

  /// Sentinel for "never" / unset timestamps.
  static constexpr Time max() { return Time{INT64_MAX}; }

 private:
  std::int64_t micros_ = 0;
};

constexpr Duration Micros(std::int64_t us) { return Duration{us}; }
constexpr Duration Millis(std::int64_t ms) { return Duration{ms * 1000}; }
constexpr Duration Seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e6)};
}

/// Formats a time point as seconds with millisecond precision, e.g. "12.345s".
std::string ToString(Time t);
/// Formats a duration as milliseconds, e.g. "105.0ms".
std::string ToString(Duration d);

}  // namespace domino
