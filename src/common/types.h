// Small shared vocabulary types used across layers.
#pragma once

#include <cstdint>
#include <string>

namespace domino {

/// Direction of a transmission relative to the UE under test:
/// uplink = UE -> gNB (the VCA client's outbound media),
/// downlink = gNB -> UE (inbound media).
enum class Direction : std::uint8_t { kUplink, kDownlink };

inline const char* ToString(Direction d) {
  return d == Direction::kUplink ? "UL" : "DL";
}

inline Direction Opposite(Direction d) {
  return d == Direction::kUplink ? Direction::kDownlink : Direction::kUplink;
}

/// RRC connection state of the UE (simplified two-state machine plus the
/// transition period during which the PHY is silent).
enum class RrcState : std::uint8_t { kConnected, kIdle, kTransitioning };

inline const char* ToString(RrcState s) {
  switch (s) {
    case RrcState::kConnected:
      return "connected";
    case RrcState::kIdle:
      return "idle";
    default:
      return "transitioning";
  }
}

/// GCC's view of the network, as estimated by the overuse detector.
enum class NetworkState : std::uint8_t { kNormal, kOveruse, kUnderuse };

inline const char* ToString(NetworkState s) {
  switch (s) {
    case NetworkState::kNormal:
      return "normal";
    case NetworkState::kOveruse:
      return "overuse";
    default:
      return "underuse";
  }
}

}  // namespace domino
