#include "common/parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>

namespace domino {

namespace {

/// The strto* family needs a NUL-terminated buffer; views into larger
/// buffers are copied at most once, and numeric tokens are short anyway.
/// Over-long tokens cannot be numbers we accept — reject before copying.
constexpr std::size_t kMaxNumberChars = 64;

bool TooLong(std::string_view s) {
  return s.empty() || s.size() > kMaxNumberChars;
}

}  // namespace

bool ParseInt64(std::string_view s, std::int64_t& out) {
  if (TooLong(s)) return false;
  char buf[kMaxNumberChars + 1];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  // strtoll skips leading whitespace; strict parsing must not.
  if (buf[0] == ' ' || buf[0] == '\t') return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  out = v;
  return true;
}

bool ParseUint64(std::string_view s, std::uint64_t& out) {
  if (TooLong(s)) return false;
  // strtoull accepts a leading '-' (wrapping modularly); forbid any sign.
  if (s[0] == '-' || s[0] == '+' || s[0] == ' ' || s[0] == '\t') {
    return false;
  }
  char buf[kMaxNumberChars + 1];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  out = v;
  return true;
}

bool ParseFinite(std::string_view s, double& out) {
  if (TooLong(s)) return false;
  char buf[kMaxNumberChars + 1];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  if (buf[0] == ' ' || buf[0] == '\t') return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  if (!std::isfinite(v)) return false;  // rejects "inf"/"nan" spellings too
  out = v;
  return true;
}

bool ParseInt64In(std::string_view s, std::int64_t lo, std::int64_t hi,
                  std::int64_t& out) {
  std::int64_t v = 0;
  if (!ParseInt64(s, v) || v < lo || v > hi) return false;
  out = v;
  return true;
}

bool ParseFiniteIn(std::string_view s, double lo, double hi, double& out) {
  double v = 0;
  if (!ParseFinite(s, v) || v < lo || v > hi) return false;
  out = v;
  return true;
}

LineRead BoundedGetline(std::istream& is, std::string& line,
                        std::size_t max) {
  line.clear();
  LineRead r;
  std::streambuf* sb = is.rdbuf();
  if (sb == nullptr) {
    is.setstate(std::ios::failbit);
    return r;
  }
  for (;;) {
    const int ch = sb->sbumpc();
    if (ch == std::char_traits<char>::eof()) {
      is.setstate(r.raw_len == 0 && !r.got ? (std::ios::eofbit |
                                              std::ios::failbit)
                                           : std::ios::eofbit);
      r.hit_eof = true;
      r.got = r.got || r.raw_len > 0;
      return r;
    }
    r.got = true;
    if (ch == '\n') return r;
    ++r.raw_len;
    if (line.size() < max) {
      line.push_back(static_cast<char>(ch));
    } else {
      r.truncated = true;  // keep consuming to '\n' without buffering
    }
  }
}

}  // namespace domino
