// Descriptive statistics used by the benchmark harnesses (CDFs, percentiles)
// and by Domino's event conditions (windowed percentiles).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace domino {

/// Percentile via linear interpolation between order statistics.
/// `p` is in [0, 100]. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

/// Percentile over an already-sorted vector (no copy).
double PercentileSorted(const std::vector<double>& sorted, double p);

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

/// A condensed empirical CDF: `points[i]` is the value at quantile
/// `quantiles[i]`. Used by benches to print figure series compactly.
struct CdfSummary {
  std::vector<double> quantiles;
  std::vector<double> points;
};

/// Builds a CDF summary at the given quantiles (default: 1..99 plus tails).
CdfSummary MakeCdf(std::vector<double> values,
                   std::vector<double> quantiles = {});

/// Running statistics accumulator (Welford) for counters that should not
/// retain every sample.
class RunningStats {
 public:
  void Add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Least-squares slope of y over x. Returns 0 if fewer than 2 points or
/// degenerate x. This is the same primitive GCC's trendline filter uses.
double LinearSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace domino
