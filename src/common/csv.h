// Minimal CSV reading/writing for telemetry import/export. Values containing
// commas, quotes, or newlines are quoted per RFC 4180.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace domino {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void WriteRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& os_;
};

/// Parses one CSV line into cells, honouring quotes. Throws
/// std::invalid_argument on an unterminated quote.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Reads all rows from a stream. Empty lines are skipped.
std::vector<std::vector<std::string>> ReadCsv(std::istream& is);

}  // namespace domino
