// Minimal CSV reading/writing for telemetry import/export. Values containing
// commas, quotes, or newlines are quoted per RFC 4180.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/parse.h"

namespace domino {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void WriteRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& os_;
};

/// Parses one CSV line into cells, honouring quotes. Throws
/// std::invalid_argument on an unterminated quote.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Non-throwing variant: parses `line` into `cells` (cleared first).
/// Returns false on an unterminated quote or when the row would exceed
/// `max_fields` cells; `cells` then holds the partial parse.
bool ParseCsvLineTo(const std::string& line, std::vector<std::string>& cells,
                    std::size_t max_fields);

/// Allocation-free tokenizer for hot readers: `cells` are string_views into
/// `line`'s own buffer. Quoted cells are RFC 4180-unescaped *in place*
/// (unescaping only ever shrinks, so the write cursor never overtakes the
/// read cursor); lines without a quote character take a pure split path.
/// The views are invalidated by the next modification of `line`. Same
/// contract as ParseCsvLineTo otherwise: false on an unterminated quote or
/// more than `max_fields` cells.
bool ParseCsvLineViews(std::string& line, std::vector<std::string_view>& cells,
                       std::size_t max_fields);

/// Reads all rows from a stream. Empty lines are skipped.
std::vector<std::vector<std::string>> ReadCsv(std::istream& is);

/// What the bounded reader had to reject (counts only; the good rows are
/// still returned).
struct CsvReadStatus {
  std::size_t rows_dropped = 0;  ///< Unterminated quote / too many fields /
                                 ///< over-long line.
  bool row_budget_hit = false;   ///< Stopped at lim.max_records rows.
};

/// Bounded, non-throwing reader for untrusted streams: each line is capped
/// at lim.max_line_bytes (longer lines are consumed but dropped), each row
/// at lim.max_fields cells, and at most lim.max_records rows are returned.
/// Malformed rows are dropped and counted in `status`; nothing throws.
std::vector<std::vector<std::string>> ReadCsv(std::istream& is,
                                              const InputLimits& lim,
                                              CsvReadStatus* status);

}  // namespace domino
