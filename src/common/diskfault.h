// Deterministic disk-fault injection for durability-critical writes.
//
// The live runtime and the fleet daemon persist three kinds of state —
// per-session checkpoints, the fleet manifest, and JSON reports/status
// files. Environmental faults (full disk, dying device) hit exactly those
// writes, and "what happens when the checkpoint write fails" must be a
// tested code path, not a hope. This shim makes such faults reproducible:
// an injector counts the guarded writes it sees and fails the Nth one with
// a chosen errno (ENOSPC, EIO) or a short write, deterministically, so a
// test or chaos gate can assert the exact degradation path (retry, backoff,
// quarantine — never a daemon abort).
//
// The injector is plumbed explicitly (a pointer parameter, nullptr = no
// faults) rather than through a global so concurrent sessions in one fleet
// process stay independently deterministic.
#pragma once

#include <cstddef>
#include <string>

namespace domino {

/// What to inject, and when. `at_write` is 1-based: the Nth guarded write
/// observed by the injector fails; all earlier and later writes succeed.
/// Like the process crash/fail/wedge chaos kinds, a spec fires at most
/// once per injector lifetime.
struct DiskFaultSpec {
  enum class Kind {
    kNone,
    kEnospc,      ///< write() fails with ENOSPC (device full).
    kEio,         ///< write() fails with EIO (device error).
    kShortWrite,  ///< write() persists only half the payload, then EIO.
    kRename,      ///< write+fsync succeed; the publishing rename/link fails
                  ///< with EIO, leaving the temp file and an untouched
                  ///< target (the dangerous last step of the atomic
                  ///< protocol).
    kFsync        ///< write succeeds; fsync fails with EIO — data may be in
                  ///< the page cache but durability was refused.
  };
  Kind kind = Kind::kNone;
  long at_write = 0;
};

/// Parses "enospc:N" / "eio:N" / "short:N" / "rename:N" / "fsync:N"
/// (N >= 1). Returns false on any other input.
bool ParseDiskFaultSpec(const std::string& text, DiskFaultSpec* spec);

/// Counts guarded writes and decides which one fails. Thread-compatible,
/// not thread-safe: each session owns its injector.
class DiskFaultInjector {
 public:
  DiskFaultInjector() = default;
  explicit DiskFaultInjector(const DiskFaultSpec& spec) : spec_(spec) {}

  /// Called once per guarded write. Returns 0 to let the write proceed, or
  /// the errno to fail it with. For a short-write fault, `*short_cap` (if
  /// non-null) is set to the number of bytes the caller should actually
  /// persist before failing; the fault still returns a nonzero errno.
  int OnWrite(std::size_t payload_bytes, std::size_t* short_cap);

  [[nodiscard]] bool armed() const {
    return spec_.kind != DiskFaultSpec::Kind::kNone && !fired_;
  }
  [[nodiscard]] long writes_seen() const { return writes_seen_; }
  [[nodiscard]] long faults_injected() const { return faults_injected_; }
  /// Human-readable name of the last injected fault ("ENOSPC", "EIO",
  /// "short write", "rename failure", "fsync failure"); empty if none fired
  /// yet. Deterministic across runs, unlike strerror() text.
  [[nodiscard]] const std::string& last_fault_name() const {
    return last_fault_name_;
  }
  /// Which stage the last injected fault targets. A caller performing a
  /// multi-stage durable write (write, fsync, rename) consults this after a
  /// nonzero OnWrite() to fail at the right stage: kRename faults let the
  /// write and fsync succeed and break only the publishing rename/link.
  [[nodiscard]] DiskFaultSpec::Kind last_fault_kind() const {
    return last_fault_kind_;
  }

 private:
  DiskFaultSpec spec_;
  bool fired_ = false;
  long writes_seen_ = 0;
  long faults_injected_ = 0;
  std::string last_fault_name_;
  DiskFaultSpec::Kind last_fault_kind_ = DiskFaultSpec::Kind::kNone;
};

/// Process-unique staging suffix (".tmp.<hex>") for temp+rename writers.
/// Two processes racing to publish the same path — a fenced zombie and the
/// box that stole its lease, in the sharded fleet's bounded TOCTOU window —
/// must never write the SAME staging file, or an interleaved write could be
/// renamed into place as a torn document. With unique staging names the
/// loser's publish either fully replaces the winner's or never lands.
const std::string& AtomicTempSuffix();

/// Atomic text-file write (temp + rename) with optional fault injection
/// and optional fsync durability. Used for the fleet manifest (fsync) and
/// the fleet_status.json liveness file (no fsync: advisory, refreshed
/// every tick). Returns false on failure — injected or real — with
/// `*error` describing it; the previous file, if any, is left untouched.
/// The staging file is `path + AtomicTempSuffix()`.
bool AtomicWriteFile(const std::string& path, const std::string& body,
                     bool fsync_file, DiskFaultInjector* fault,
                     std::string* error);

}  // namespace domino
