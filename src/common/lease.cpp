#include "common/lease.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/parse.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace domino {
namespace {

namespace fs = std::filesystem;

/// A lease record is a handful of short lines; anything bigger at a lease
/// path is garbage and must not be slurped.
constexpr std::uintmax_t kMaxLeaseBytes = 64 << 10;

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string U64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

bool SlurpSmall(const std::string& path, std::string* out) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || size > kMaxLeaseBytes) return false;
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad()) return false;
  *out = os.str();
  return true;
}

/// Parses the "e<digits>" name of an epoch/heartbeat/stale entry.
bool ParseTokenSuffix(std::string_view name, std::uint64_t* token) {
  if (name.size() < 2 || name.front() != 'e') return false;
  return ParseUint64(name.substr(1), *token);
}

std::string LeasePath(const std::string& dir) { return dir + "/lease"; }

std::string HeartbeatPath(const std::string& dir, std::uint64_t token) {
  return dir + "/hb-e" + U64(token);
}

/// Allocates the next fencing token by exclusive mkdir under epochs/.
/// mkdir is atomic-exclusive on every assumed filesystem, so of any number
/// of concurrent allocators each gets a distinct token, and scanning the
/// surviving directories first keeps tokens strictly increasing.
bool AllocateToken(const std::string& dir, std::uint64_t* token,
                   std::string* error) {
  const fs::path epochs = fs::path(dir) / "epochs";
  std::error_code ec;
  fs::create_directories(epochs, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "lease: cannot create '" + epochs.string() + "'";
    }
    return false;
  }
  std::uint64_t max_seen = 0;
  for (const auto& entry : fs::directory_iterator(epochs, ec)) {
    std::uint64_t t = 0;
    if (ParseTokenSuffix(entry.path().filename().string(), &t) &&
        t > max_seen) {
      max_seen = t;
    }
  }
  std::uint64_t cand = max_seen + 1;
  for (int tries = 0; tries < 4096; ++tries, ++cand) {
    ec.clear();
    if (fs::create_directory(epochs / ("e" + U64(cand)), ec)) {
      *token = cand;
      return true;
    }
    if (ec) {
      if (error != nullptr) {
        *error = "lease: epoch mkdir failed under '" + epochs.string() + "'";
      }
      return false;
    }
    // Exists: a concurrent allocator got there first — take the next one.
  }
  if (error != nullptr) {
    *error = "lease: token allocation livelocked in '" + dir + "'";
  }
  return false;
}

/// Best-effort cleanup of debris strictly below the holder's token:
/// superseded epochs, orphaned heartbeats, renamed-away stale leases, and
/// abandoned publish temp files. Never touches the current token's epoch
/// (monotonicity) and ignores all errors (another box may race the same
/// cleanup).
void GcDebris(const std::string& dir, std::uint64_t own_token) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t t = 0;
    bool old = false;
    if (name.rfind("hb-", 0) == 0) {
      old = ParseTokenSuffix(std::string_view(name).substr(3), &t) &&
            t < own_token;
    } else if (name.rfind("stale-", 0) == 0) {
      old = ParseTokenSuffix(std::string_view(name).substr(6), &t) &&
            t < own_token;
    } else if (name.rfind("tmp-", 0) == 0) {
      old = ParseTokenSuffix(std::string_view(name).substr(4), &t) &&
            t < own_token;
    }
    if (old) fs::remove(entry.path(), ec);
  }
  const fs::path epochs = fs::path(dir) / "epochs";
  for (const auto& entry : fs::directory_iterator(epochs, ec)) {
    std::uint64_t t = 0;
    if (ParseTokenSuffix(entry.path().filename().string(), &t) &&
        t < own_token) {
      fs::remove(entry.path(), ec);
    }
  }
}

bool ReadLeaseFile(const std::string& dir, LeaseInfo* out) {
  std::string text;
  if (!SlurpSmall(LeasePath(dir), &text)) return false;
  std::string err;
  return ParseLease(text, out, &err);
}

}  // namespace

std::string FormatLease(const LeaseInfo& info) {
  std::ostringstream os;
  os << "domino-lease v1\n";
  os << "owner " << info.owner << "\n";
  os << "token " << info.token << "\n";
  os << "seq " << info.seq << "\n";
  os << "renewed_unix_ms " << info.renewed_unix_ms << "\n";
  std::string body = os.str();
  return body + "checksum " + Hex64(Fnv1a(body)) + "\n";
}

bool ParseLease(const std::string& text, LeaseInfo* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "lease: " + why;
    return false;
  };
  // Checksum first: a torn record must be rejected before any field is
  // trusted (same protocol as checkpoints and manifests).
  std::size_t mark = text.rfind("checksum ");
  if (mark == std::string::npos || (mark != 0 && text[mark - 1] != '\n')) {
    return fail("missing checksum line");
  }
  std::string body = text.substr(0, mark);
  std::istringstream tail(text.substr(mark));
  std::string word, digest;
  tail >> word >> digest;
  if (digest != Hex64(Fnv1a(body))) {
    return fail("checksum mismatch (torn or corrupted write)");
  }
  if (text.substr(mark) != "checksum " + digest + "\n") {
    return fail("trailing bytes after checksum line");
  }

  LeaseInfo rec;
  bool saw_owner = false, saw_token = false;
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != "domino-lease v1") {
    return fail("bad header (want 'domino-lease v1')");
  }
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    std::string value;
    std::getline(ls, value);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (key == "owner") {
      if (value.empty()) return fail("empty owner");
      rec.owner = value;
      saw_owner = true;
    } else if (key == "token") {
      if (!ParseUint64(value, rec.token) || rec.token == 0) {
        return fail("bad token '" + value + "'");
      }
      saw_token = true;
    } else if (key == "seq") {
      if (!ParseUint64(value, rec.seq)) {
        return fail("bad seq '" + value + "'");
      }
    } else if (key == "renewed_unix_ms") {
      if (!ParseInt64(value, rec.renewed_unix_ms)) {
        return fail("bad renewed_unix_ms '" + value + "'");
      }
    } else {
      // The checksum already proved these bytes are exactly what a writer
      // produced, so an unknown key is version skew — refuse rather than
      // trust half a record.
      return fail("unknown key '" + key + "'");
    }
  }
  if (!saw_owner || !saw_token) return fail("missing owner/token");
  *out = rec;
  return true;
}

LeaseFile::LeaseFile(std::string lease_dir, std::string owner)
    : lease_dir_(std::move(lease_dir)), owner_(std::move(owner)) {}

LeaseAcquire LeaseFile::TryAcquire(std::int64_t now_ms,
                                   std::int64_t stale_ttl_ms,
                                   DiskFaultInjector* fault,
                                   std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return LeaseAcquire::kIoError;
  };
  if (held_) return LeaseAcquire::kAcquired;
  std::error_code ec;
  fs::create_directories(lease_dir_, ec);
  if (ec) return fail("lease: cannot create '" + lease_dir_ + "'");

  const std::string lease_path = LeasePath(lease_dir_);
  bool must_steal = false;
  if (fs::exists(lease_path, ec)) {
    LeaseInfo cur;
    if (InspectLease(lease_dir_, &cur)) {
      if (now_ms - cur.renewed_unix_ms <= stale_ttl_ms) {
        // Live owner (or clock skew in its favour — err toward not
        // stealing).
        return LeaseAcquire::kHeld;
      }
    }
    // Stale heartbeat or an unparseable record: the owner's box is
    // presumed dead; fence it out.
    must_steal = true;
  }

  std::uint64_t token = 0;
  if (!AllocateToken(lease_dir_, &token, error)) {
    return LeaseAcquire::kIoError;
  }
  if (must_steal) {
    // Unique target per stealer: of N concurrent stealers exactly one
    // rename succeeds; the losers fall through and lose the link race.
    const std::string stale = lease_dir_ + "/stale-e" + U64(token);
    if (std::rename(lease_path.c_str(), stale.c_str()) != 0 &&
        errno != ENOENT) {
      return fail("lease: cannot retire stale lease '" + lease_path + "'");
    }
  }

  LeaseInfo mine;
  mine.owner = owner_;
  mine.token = token;
  mine.seq = 0;
  mine.renewed_unix_ms = now_ms;
  const std::string body = FormatLease(mine);
  const std::string tmp = lease_dir_ + "/tmp-e" + U64(token);

  // The publish is one guarded write; an injected fault fails it at the
  // stage its kind names, mirroring AtomicWriteFile so the chaos gates can
  // prove acquisition is atomic under every stage's failure.
  std::size_t cap = body.size();
  int injected = 0;
  DiskFaultSpec::Kind inj_kind = DiskFaultSpec::Kind::kNone;
  if (fault != nullptr) {
    injected = fault->OnWrite(body.size(), &cap);
    if (injected != 0) inj_kind = fault->last_fault_kind();
  }
  if (injected != 0 && (inj_kind == DiskFaultSpec::Kind::kEnospc ||
                        inj_kind == DiskFaultSpec::Kind::kEio)) {
    return fail("lease: write '" + lease_path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
#if defined(_WIN32)
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return fail("lease: cannot open '" + tmp + "' for writing");
    f.write(body.data(), static_cast<std::streamsize>(cap));
    f.flush();
    if (!f) return fail("lease: write to '" + tmp + "' failed");
  }
  if (injected != 0) {
    return fail("lease: publish of '" + lease_path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
  // Compile-only fallback: Windows has no link(2); exists-check + rename
  // is not atomic, which is acceptable on a non-production platform.
  if (fs::exists(lease_path, ec)) {
    fs::remove(tmp, ec);
    return LeaseAcquire::kHeld;
  }
  if (std::rename(tmp.c_str(), lease_path.c_str()) != 0) {
    fs::remove(tmp, ec);
    return fail("lease: publish rename to '" + lease_path + "' failed");
  }
#else
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("lease: cannot open '" + tmp + "' for writing");
  std::size_t off = 0;
  while (off < cap) {
    const ssize_t n = ::write(fd, body.data() + off, cap - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail("lease: write to '" + tmp + "' failed");
    }
    off += static_cast<std::size_t>(n);
  }
  if (injected != 0 && inj_kind == DiskFaultSpec::Kind::kShortWrite) {
    // Torn temp file stays behind for postmortems; the lease itself is
    // untouched because the link never happens.
    ::close(fd);
    return fail("lease: write '" + lease_path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
  if ((injected != 0 && inj_kind == DiskFaultSpec::Kind::kFsync) ||
      ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    if (injected != 0 && inj_kind == DiskFaultSpec::Kind::kFsync) {
      return fail("lease: fsync of '" + tmp + "' failed (injected " +
                  fault->last_fault_name() + ")");
    }
    return fail("lease: fsync of '" + tmp + "' failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail("lease: close of '" + tmp + "' failed");
  }
  if (injected != 0 && inj_kind == DiskFaultSpec::Kind::kRename) {
    // Fully written and fsynced but never published — the link-stage crash
    // window, now reproducible. The temp file stays for postmortems.
    return fail("lease: link of '" + lease_path + "' failed (injected " +
                fault->last_fault_name() + ")");
  }
  // link(2), not rename: it fails with EEXIST when a lease already exists,
  // which is the whole point — exactly one publisher wins, and an existing
  // lease is never silently replaced.
  if (::link(tmp.c_str(), lease_path.c_str()) != 0) {
    const int link_errno = errno;
    ::unlink(tmp.c_str());
    if (link_errno == EEXIST) return LeaseAcquire::kHeld;
    return fail("lease: link of '" + lease_path + "' failed");
  }
  ::unlink(tmp.c_str());
#endif
  info_ = mine;
  held_ = true;
  GcDebris(lease_dir_, token);
  return LeaseAcquire::kAcquired;
}

LeaseRenew LeaseFile::Renew(std::int64_t now_ms, DiskFaultInjector* fault,
                            std::string* error) {
  if (!held_) {
    if (error != nullptr) *error = "lease: not held";
    return LeaseRenew::kLost;
  }
  LeaseInfo cur;
  if (!ReadLeaseFile(lease_dir_, &cur) || cur.token != info_.token) {
    // Stolen (or retired): the new owner's files must not be touched.
    held_ = false;
    if (error != nullptr) {
      *error = "lease: lost '" + lease_dir_ + "' (fenced by token " +
               U64(cur.token) + ")";
    }
    return LeaseRenew::kLost;
  }
  LeaseInfo hb;
  hb.owner = owner_;
  hb.token = info_.token;
  hb.seq = info_.seq + 1;
  hb.renewed_unix_ms = now_ms;
  std::string werr;
  // Only this token's owner ever writes hb-e<token>, so even a zombie's
  // late heartbeat lands on an orphaned file, never on a stolen lease.
  if (!AtomicWriteFile(HeartbeatPath(lease_dir_, info_.token),
                       FormatLease(hb), /*fsync_file=*/true, fault, &werr)) {
    if (error != nullptr) *error = "lease: heartbeat failed: " + werr;
    return LeaseRenew::kIoError;
  }
  info_.seq = hb.seq;
  info_.renewed_unix_ms = now_ms;
  return LeaseRenew::kRenewed;
}

bool LeaseFile::Release(std::string* error) {
  if (!held_) return true;
  held_ = false;
  LeaseInfo cur;
  if (!ReadLeaseFile(lease_dir_, &cur) || cur.token != info_.token) {
    // Already stolen — the lease on disk belongs to the new owner.
    return true;
  }
  // Read-check-unlink is a TOCTOU window, accepted by design: a releasing
  // owner has a fresh heartbeat, so no correct stealer targets it inside
  // the window (documented in DESIGN.md §15).
  std::error_code ec;
  fs::remove(LeasePath(lease_dir_), ec);
  if (ec) {
    if (error != nullptr) {
      *error = "lease: cannot remove '" + LeasePath(lease_dir_) + "'";
    }
    return false;
  }
  fs::remove(HeartbeatPath(lease_dir_, info_.token), ec);
  return true;
}

bool InspectLease(const std::string& lease_dir, LeaseInfo* out) {
  LeaseInfo lease;
  if (!ReadLeaseFile(lease_dir, &lease)) return false;
  std::string hb_text;
  LeaseInfo hb;
  std::string err;
  if (SlurpSmall(HeartbeatPath(lease_dir, lease.token), &hb_text) &&
      ParseLease(hb_text, &hb, &err) && hb.token == lease.token &&
      hb.renewed_unix_ms > lease.renewed_unix_ms) {
    lease.seq = hb.seq;
    lease.renewed_unix_ms = hb.renewed_unix_ms;
  }
  *out = lease;
  return true;
}

bool LeaseTokenCurrent(const std::string& lease_dir, std::uint64_t token) {
  LeaseInfo cur;
  return ReadLeaseFile(lease_dir, &cur) && cur.token == token;
}

}  // namespace domino
