// Discrete-event simulation core.
//
// A single EventQueue drives the whole two-party call simulation: the MAC
// schedulers tick per slot, the application/GCC tick at millisecond scale,
// and packet deliveries are one-shot events. Events scheduled for the same
// time fire in FIFO order of scheduling, which keeps component interactions
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace domino {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to run at absolute time `t` (>= now).
  void ScheduleAt(Time t, Callback cb);
  /// Schedules `cb` to run `d` after the current time.
  void ScheduleAfter(Duration d, Callback cb) { ScheduleAt(now_ + d, std::move(cb)); }

  /// Runs events until the queue is empty or the next event is after `end`.
  /// The clock finishes at `end` even if the queue drains earlier.
  void RunUntil(Time end);

  /// Runs a single event if one exists; returns false when empty.
  bool RunOne();

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO within the same timestamp
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time now_{0};
  std::uint64_t next_seq_ = 0;
};

}  // namespace domino
