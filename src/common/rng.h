// Deterministic random number generation for the simulator.
//
// Every stochastic component takes an explicit Rng so that simulations are
// reproducible from a single seed, and components can be given independent
// streams (via Fork) without correlated draws.
#pragma once

#include <cstdint>
#include <random>

namespace domino {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return uniform_(engine_); }
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential with the given mean (not rate).
  double ExpMean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Log-normal parameterised by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }
  /// Bernoulli trial.
  bool Chance(double p) { return Uniform() < p; }
  /// Poisson draw with the given mean.
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Derives an independent child stream. The child's seed mixes the parent
  /// stream state with a caller-provided tag so different subsystems seeded
  /// from the same parent do not collide.
  Rng Fork(std::uint64_t tag) {
    std::uint64_t s = engine_() ^ (tag * 0x9E3779B97F4A7C15ull);
    return Rng(s);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace domino
