#include "gcc/inter_arrival.h"

namespace domino::gcc {

InterArrival::InterArrival(Duration burst_window)
    : burst_window_(burst_window) {}

void InterArrival::Reset() {
  current_ = Group{};
  previous_ = Group{};
}

std::optional<GroupDelta> InterArrival::OnPacket(Time send_time,
                                                 Time arrival_time) {
  if (!current_.valid) {
    current_ = Group{send_time, send_time, arrival_time, true};
    return std::nullopt;
  }
  if (send_time - current_.first_send <= burst_window_) {
    // Same burst: extend the group.
    current_.last_send = std::max(current_.last_send, send_time);
    current_.last_arrival = std::max(current_.last_arrival, arrival_time);
    return std::nullopt;
  }
  // The packet starts a new group; the previous group is now complete.
  std::optional<GroupDelta> delta;
  if (previous_.valid) {
    GroupDelta d;
    d.send_delta_ms = (current_.last_send - previous_.last_send).millis();
    d.arrival_delta_ms =
        (current_.last_arrival - previous_.last_arrival).millis();
    d.arrival_time = current_.last_arrival;
    delta = d;
  }
  previous_ = current_;
  current_ = Group{send_time, send_time, arrival_time, true};
  return delta;
}

}  // namespace domino::gcc
