// Packet-group delta computation (libwebrtc's InterArrival).
//
// Packets sent within a 5 ms burst window form a group; the trendline
// estimator consumes per-group deltas
//   d = (arrival_i - arrival_{i-1}) - (send_i - send_{i-1})
// which are positive when the path is queueing (delay building up).
#pragma once

#include <optional>

#include "common/time.h"

namespace domino::gcc {

struct GroupDelta {
  double send_delta_ms = 0;
  double arrival_delta_ms = 0;
  Time arrival_time;  ///< Arrival of the newer group's last packet.

  [[nodiscard]] double delay_delta_ms() const {
    return arrival_delta_ms - send_delta_ms;
  }
};

class InterArrival {
 public:
  explicit InterArrival(Duration burst_window = Millis(5));

  /// Feeds one packet (in send order); returns a delta once a group
  /// completes and a previous complete group exists.
  std::optional<GroupDelta> OnPacket(Time send_time, Time arrival_time);

  void Reset();

 private:
  struct Group {
    Time first_send;
    Time last_send;
    Time last_arrival;
    bool valid = false;
  };

  Duration burst_window_;
  Group current_{};
  Group previous_{};
};

}  // namespace domino::gcc
