// GoogCc — the sender-side congestion controller facade.
//
// Wires together the delay-based pipeline (inter-arrival grouping ->
// trendline estimator -> AIMD rate control), the loss-based controller, the
// acknowledged-bitrate estimator, and the congestion-window pushback
// controller, mirroring libwebrtc's GoogCcNetworkController composition.
//
// The paper instruments exactly the internal state this class exposes:
// delay slope, detector state, target bitrate, pushback rate, outstanding
// bytes, and congestion window (§3, §6).
#pragma once

#include <cstdint>
#include <map>

#include "common/time.h"
#include "common/types.h"
#include "gcc/ack_bitrate.h"
#include "gcc/aimd.h"
#include "gcc/feedback.h"
#include "gcc/inter_arrival.h"
#include "gcc/pushback.h"
#include "gcc/trendline.h"

namespace domino::gcc {

struct GccConfig {
  TrendlineConfig trendline;
  AimdConfig aimd;
  PushbackConfig pushback;
  double loss_high = 0.10;  ///< Loss fraction triggering loss-based decrease.
  double loss_low = 0.02;   ///< Loss fraction allowing loss-based recovery.
};

class GoogCc {
 public:
  explicit GoogCc(GccConfig cfg = {});

  /// Sender hook: a media packet left the pacer.
  void OnPacketSent(std::uint64_t id, int bytes, Time now);

  /// Sender hook: an RTCP transport feedback message arrived.
  void OnFeedback(const TransportFeedback& fb);

  /// Periodic process hook (libwebrtc runs this every 25 ms): re-evaluates
  /// the congestion-window pushback from current in-flight bytes. This is
  /// what lets the pushback controller react *while feedback is stalled* —
  /// the exact scenario of Fig. 22.
  void OnProcess(Time now);

  /// Delay+loss combined bandwidth estimate (the "target bitrate").
  [[nodiscard]] double target_bitrate_bps() const { return target_bps_; }
  /// Encoder rate after congestion-window pushback.
  [[nodiscard]] double pushback_bitrate_bps() const { return pushback_bps_; }
  [[nodiscard]] double outstanding_bytes() const { return outstanding_bytes_; }
  [[nodiscard]] double cwnd_bytes() const { return pushback_.cwnd_bytes(); }
  [[nodiscard]] NetworkState state() const { return trendline_.state(); }
  [[nodiscard]] double delay_slope() const {
    return trendline_.modified_trend();
  }
  [[nodiscard]] double acked_bitrate_bps() const {
    return acked_.bitrate_bps();
  }
  [[nodiscard]] Duration rtt() const { return rtt_; }
  [[nodiscard]] double loss_fraction() const { return loss_fraction_; }
  /// Loss-based ceiling (the final target is min(delay-based, this)).
  [[nodiscard]] double loss_based_bps() const { return loss_based_bps_; }
  [[nodiscard]] long overuse_count() const { return overuse_count_; }
  [[nodiscard]] long fast_recovery_count() const {
    return aimd_.fast_recovery_count();
  }

 private:
  GccConfig cfg_;
  InterArrival inter_arrival_;
  TrendlineEstimator trendline_;
  AimdRateControl aimd_;
  AckedBitrateEstimator acked_;
  PushbackController pushback_;

  std::map<std::uint64_t, int> in_flight_;  ///< packet id -> bytes
  double outstanding_bytes_ = 0;
  double target_bps_;
  double pushback_bps_;
  double loss_based_bps_;
  double loss_fraction_ = 0;
  Duration rtt_ = Millis(100);
  NetworkState prev_state_ = NetworkState::kNormal;
  Time last_app_limited_ = Time::max();
  long overuse_count_ = 0;
};

}  // namespace domino::gcc
