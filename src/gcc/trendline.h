// Trendline estimator + adaptive-threshold overuse detector
// (libwebrtc's TrendlineEstimator, Carlucci et al. 2016 §4.1).
//
// The estimator keeps an exponentially smoothed accumulated delay and fits a
// least-squares line over the most recent samples; the slope — scaled by the
// sample count and a fixed gain — is compared against a threshold that
// itself adapts to the signal magnitude. Sustained positive trend above the
// threshold signals overuse; a trend below the negative threshold signals
// underuse.
#pragma once

#include <deque>

#include "common/time.h"
#include "common/types.h"
#include "gcc/inter_arrival.h"

namespace domino::gcc {

struct TrendlineConfig {
  int window_size = 20;            ///< Regression window (groups).
  double smoothing = 0.9;          ///< EWMA coefficient for accumulated delay.
  double threshold_gain = 4.0;     ///< Gain applied to the raw slope.
  int max_deltas = 60;             ///< Cap on the sample-count multiplier.
  double k_up = 0.0087;            ///< Threshold adaptation (rising).
  double k_down = 0.039;           ///< Threshold adaptation (falling).
  double initial_threshold = 12.5;
  double min_threshold = 6.0;
  double max_threshold = 600.0;
  Duration overuse_time = Millis(10);  ///< Sustained-trend requirement.
};

class TrendlineEstimator {
 public:
  explicit TrendlineEstimator(TrendlineConfig cfg = {});

  /// Feeds one inter-group delta; updates the trend and network state.
  void OnDelta(const GroupDelta& delta);

  [[nodiscard]] NetworkState state() const { return state_; }
  /// The modified trend (slope x count x gain) compared to the threshold —
  /// the paper's "delay slope" signal (Fig. 21 subplot 2).
  [[nodiscard]] double modified_trend() const { return modified_trend_; }
  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  void UpdateThreshold(double modified_trend, Time now);
  void Detect(double trend, double send_delta_ms, Time now);

  TrendlineConfig cfg_;
  std::deque<std::pair<double, double>> history_;  ///< (arrival ms, smoothed).
  double accumulated_delay_ms_ = 0;
  double smoothed_delay_ms_ = 0;
  int num_deltas_ = 0;
  double threshold_;
  double modified_trend_ = 0;
  double prev_trend_ = 0;
  Time last_update_{0};
  Time overuse_start_ = Time::max();
  int overuse_counter_ = 0;
  NetworkState state_ = NetworkState::kNormal;
  bool first_arrival_set_ = false;
  double first_arrival_ms_ = 0;
};

}  // namespace domino::gcc
