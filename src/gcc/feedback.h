// Transport-wide feedback structures exchanged between the WebRTC receiver
// and the sender-side congestion controller (RFC 8888 / transport-cc style).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace domino::gcc {

/// Per-packet receive report inside one feedback message.
struct PacketResult {
  std::uint64_t packet_id = 0;
  int size_bytes = 0;
  Time send_time;
  Time recv_time = Time::max();  ///< Time::max() = reported missing.

  [[nodiscard]] bool lost() const { return recv_time == Time::max(); }
};

/// One RTCP transport feedback message. `feedback_time` is when the sender
/// processed it — reverse-path delay shifts this, which is exactly the
/// mechanism behind the paper's Fig. 22 pushback-rate anomalies.
struct TransportFeedback {
  Time feedback_time;
  std::vector<PacketResult> packets;  ///< In send order.
};

}  // namespace domino::gcc
