// Congestion-window pushback controller
// (libwebrtc's CongestionWindowPushbackController; paper §6.3, Appendix E).
//
// GCC maintains a congestion window sized from the target rate and the RTT
// plus a queueing allowance. When outstanding (unacked) bytes overfill the
// window — because the forward path stalls OR the RTCP feedback path is
// delayed — the controller scales the encoder rate down multiplicatively,
// independent of the bandwidth estimate.
#pragma once

#include "common/time.h"

namespace domino::gcc {

struct PushbackConfig {
  Duration queue_allowance = Millis(250);  ///< Extra queueing budget in cwnd.
  double min_pushback_ratio = 0.1;         ///< Floor on the rate multiplier.
  double min_bitrate_bps = 30e3;
};

class PushbackController {
 public:
  explicit PushbackController(PushbackConfig cfg = {});

  /// Recomputes the congestion window from the current target rate and RTT.
  void UpdateWindow(double target_bps, Duration rtt);

  /// Updates the in-flight byte count (from the sender's packet ledger).
  void OnOutstandingBytes(double bytes) { outstanding_bytes_ = bytes; }

  /// Applies pushback to `target_bps`, returning the encoder rate.
  double AdjustRate(double target_bps);

  [[nodiscard]] double cwnd_bytes() const { return cwnd_bytes_; }
  [[nodiscard]] double outstanding_bytes() const { return outstanding_bytes_; }
  [[nodiscard]] double ratio() const { return ratio_; }
  /// True when the window is currently overfilled.
  [[nodiscard]] bool window_full() const {
    return cwnd_bytes_ > 0 && outstanding_bytes_ > cwnd_bytes_;
  }

 private:
  PushbackConfig cfg_;
  double cwnd_bytes_ = 0;
  double outstanding_bytes_ = 0;
  double ratio_ = 1.0;  ///< Current encoder-rate multiplier.
};

}  // namespace domino::gcc
