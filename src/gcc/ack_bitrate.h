// Acknowledged bitrate estimator (libwebrtc's AcknowledgedBitrateEstimator,
// simplified to a sliding-window rate over acked bytes).
//
// Measures the throughput the network actually sustained, independent of the
// delay-based estimate. GCC uses it (a) to scale multiplicative decreases
// and (b) as the fast-recovery baseline the paper discusses in §6.2.
#pragma once

#include <deque>

#include "common/time.h"

namespace domino::gcc {

class AckedBitrateEstimator {
 public:
  explicit AckedBitrateEstimator(Duration window = Millis(500));

  /// Records `bytes` acknowledged with receive time `recv_time`.
  void OnAckedPacket(Time recv_time, int bytes);

  /// Current estimate in bits/s; 0 until enough data spans the window.
  [[nodiscard]] double bitrate_bps() const { return bitrate_bps_; }

 private:
  Duration window_;
  std::deque<std::pair<Time, int>> samples_;
  double bitrate_bps_ = 0;
};

}  // namespace domino::gcc
