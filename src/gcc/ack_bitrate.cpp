#include "gcc/ack_bitrate.h"

namespace domino::gcc {

AckedBitrateEstimator::AckedBitrateEstimator(Duration window)
    : window_(window) {}

void AckedBitrateEstimator::OnAckedPacket(Time recv_time, int bytes) {
  samples_.emplace_back(recv_time, bytes);
  Time horizon = recv_time - window_;
  while (!samples_.empty() && samples_.front().first < horizon) {
    samples_.pop_front();
  }
  if (samples_.size() < 2) return;
  Duration span = samples_.back().first - samples_.front().first;
  if (span < Millis(100)) return;  // too little data for a stable estimate
  long bytes_sum = 0;
  for (const auto& [t, b] : samples_) bytes_sum += b;
  bitrate_bps_ = static_cast<double>(bytes_sum) * 8.0 / span.seconds();
}

}  // namespace domino::gcc
