#include "gcc/goog_cc.h"

#include <algorithm>

namespace domino::gcc {

GoogCc::GoogCc(GccConfig cfg)
    : cfg_(cfg),
      trendline_(cfg.trendline),
      aimd_(cfg.aimd),
      pushback_(cfg.pushback),
      target_bps_(cfg.aimd.start_bitrate_bps),
      pushback_bps_(cfg.aimd.start_bitrate_bps),
      loss_based_bps_(cfg.aimd.max_bitrate_bps) {}

void GoogCc::OnPacketSent(std::uint64_t id, int bytes, Time /*now*/) {
  in_flight_.emplace(id, bytes);
  outstanding_bytes_ += bytes;
}

void GoogCc::OnFeedback(const TransportFeedback& fb) {
  int total = 0;
  int lost = 0;
  Time newest_send{0};
  for (const PacketResult& p : fb.packets) {
    ++total;
    auto it = in_flight_.find(p.packet_id);
    if (it != in_flight_.end()) {
      outstanding_bytes_ -= it->second;
      in_flight_.erase(it);
    }
    if (p.lost()) {
      ++lost;
      continue;
    }
    newest_send = std::max(newest_send, p.send_time);
    acked_.OnAckedPacket(p.recv_time, p.size_bytes);
    if (auto delta = inter_arrival_.OnPacket(p.send_time, p.recv_time)) {
      trendline_.OnDelta(*delta);
    }
  }
  outstanding_bytes_ = std::max(outstanding_bytes_, 0.0);

  if (newest_send != Time{0}) {
    // Feedback-derived RTT: send -> receiver -> feedback arrival. Includes
    // the receiver's feedback hold time, matching transport-cc behaviour.
    // Smoothed so that a single delayed feedback does not balloon the
    // congestion window and defeat the pushback mechanism.
    Duration sample = fb.feedback_time - newest_send;
    if (sample < Millis(1)) sample = Millis(1);
    rtt_ = Duration{static_cast<std::int64_t>(0.8 * rtt_.micros() +
                                              0.2 * sample.micros())};
  }
  if (total > 0) {
    double frac = static_cast<double>(lost) / total;
    loss_fraction_ = 0.7 * loss_fraction_ + 0.3 * frac;
  }

  NetworkState state = trendline_.state();
  if (state == NetworkState::kOveruse && prev_state_ != NetworkState::kOveruse) {
    ++overuse_count_;
  }
  prev_state_ = state;

  // App-limited: the pushback controller (or the encoder) sent below the
  // target recently. The acked-bitrate window looks ~500 ms into the past,
  // so the flag must persist at least that long after throttling ends —
  // otherwise the cap would drag the estimate down to the throttled rate.
  if (pushback_bps_ < 0.98 * target_bps_) {
    last_app_limited_ = fb.feedback_time;
  }
  bool app_limited = last_app_limited_ != Time::max() &&
                     fb.feedback_time - last_app_limited_ < Millis(700);
  aimd_.Update(state, acked_.bitrate_bps(), fb.feedback_time, app_limited);

  // Loss-based controller: decrease sharply on heavy loss, recover slowly
  // once loss subsides; the final target is the min of both estimators.
  double delay_based = aimd_.target_bps();
  if (loss_fraction_ > cfg_.loss_high) {
    loss_based_bps_ = std::min(loss_based_bps_,
                               delay_based * (1.0 - 0.5 * loss_fraction_));
    loss_based_bps_ = std::max(loss_based_bps_, cfg_.aimd.min_bitrate_bps);
  } else if (loss_fraction_ < cfg_.loss_low) {
    loss_based_bps_ = std::min(loss_based_bps_ * 1.02,
                               cfg_.aimd.max_bitrate_bps);
  }
  target_bps_ = std::min(delay_based, loss_based_bps_);

  pushback_.UpdateWindow(target_bps_, rtt_);
  pushback_.OnOutstandingBytes(outstanding_bytes_);
  pushback_bps_ = pushback_.AdjustRate(target_bps_);
}

void GoogCc::OnProcess(Time /*now*/) {
  pushback_.OnOutstandingBytes(outstanding_bytes_);
  pushback_bps_ = pushback_.AdjustRate(target_bps_);
}

}  // namespace domino::gcc
