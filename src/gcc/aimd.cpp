#include "gcc/aimd.h"

#include <algorithm>
#include <cmath>

namespace domino::gcc {

AimdRateControl::AimdRateControl(AimdConfig cfg)
    : cfg_(cfg), target_bps_(cfg.start_bitrate_bps) {}

void AimdRateControl::Update(NetworkState state, double acked_bps, Time now,
                             bool app_limited) {
  if (last_update_ == Time{0}) last_update_ = now;

  // State machine from Carlucci et al. Table 1: overuse always decreases,
  // underuse always holds, normal resumes increasing.
  switch (state) {
    case NetworkState::kOveruse:
      if (phase_ != Phase::kDecrease) {
        phase_ = Phase::kDecrease;
        Decrease(acked_bps, now);
      } else {
        // Repeated overuse signals keep pushing the rate down.
        Decrease(acked_bps, now);
      }
      break;
    case NetworkState::kUnderuse:
      phase_ = Phase::kHold;
      break;
    case NetworkState::kNormal:
      phase_ = Phase::kIncrease;
      Increase(acked_bps, now, app_limited);
      break;
  }
  last_update_ = now;
}

void AimdRateControl::Decrease(double acked_bps, Time now) {
  // Avoid collapsing repeatedly within one response time; the detector can
  // signal overuse on several consecutive feedback messages for the same
  // queue event.
  if (last_decrease_ != Time::max() &&
      now - last_decrease_ < cfg_.response_time) {
    return;
  }
  double base = acked_bps > 0 ? acked_bps : target_bps_;
  target_bps_ = std::max(cfg_.beta * base, cfg_.min_bitrate_bps);
  near_max_ = true;
  last_decrease_ = now;
  ++decreases_;
}

void AimdRateControl::Increase(double acked_bps, Time now,
                               bool app_limited) {
  double dt_s = std::min((now - last_update_).seconds(), 1.0);
  if (dt_s <= 0) return;
  // Fast recovery (§6.2): if measured throughput demonstrably exceeds the
  // estimate — e.g. a short-lived overuse knocked the target down while the
  // network kept delivering at the old rate — trust the acked bitrate and
  // jump rather than crawl back via additive increase. Requires sustained
  // evidence (several consecutive updates) so that stale acked-bitrate
  // samples right after a genuine congestion event don't trigger it; the
  // paper observes this path in only ~1% of anomalies.
  if (!app_limited && acked_bps > 0 && cfg_.beta * acked_bps > target_bps_) {
    if (++fast_evidence_ >= cfg_.fast_recovery_evidence) {
      target_bps_ = std::min(cfg_.beta * acked_bps, cfg_.max_bitrate_bps);
      ++fast_recoveries_;
      fast_evidence_ = 0;
      return;
    }
  } else {
    fast_evidence_ = 0;
  }
  if (near_max_) {
    // Additive: about half an average packet per response time.
    double inc_per_s =
        0.5 * cfg_.avg_packet_bytes * 8.0 / cfg_.response_time.seconds();
    target_bps_ += inc_per_s * dt_s;
  } else {
    target_bps_ *= std::pow(cfg_.multiplicative_gain, dt_s);
  }
  // The estimate may not run away from measured throughput: cap at
  // headroom x acked — unless the sender was app-limited, in which case
  // throughput under-measures the link and must not drag the estimate.
  if (!app_limited && acked_bps > 0) {
    double cap = cfg_.ack_headroom * acked_bps;
    if (target_bps_ > cap) {
      target_bps_ = cap;
      near_max_ = false;  // throughput-limited, not congestion-limited
    }
  }
  target_bps_ =
      std::clamp(target_bps_, cfg_.min_bitrate_bps, cfg_.max_bitrate_bps);
}

}  // namespace domino::gcc
