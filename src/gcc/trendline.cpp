#include "gcc/trendline.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.h"

namespace domino::gcc {

TrendlineEstimator::TrendlineEstimator(TrendlineConfig cfg)
    : cfg_(cfg), threshold_(cfg.initial_threshold) {}

void TrendlineEstimator::OnDelta(const GroupDelta& delta) {
  ++num_deltas_;
  accumulated_delay_ms_ += delta.delay_delta_ms();
  smoothed_delay_ms_ = cfg_.smoothing * smoothed_delay_ms_ +
                       (1.0 - cfg_.smoothing) * accumulated_delay_ms_;

  if (!first_arrival_set_) {
    first_arrival_set_ = true;
    first_arrival_ms_ = delta.arrival_time.millis();
  }
  history_.emplace_back(delta.arrival_time.millis() - first_arrival_ms_,
                        smoothed_delay_ms_);
  while (history_.size() > static_cast<std::size_t>(cfg_.window_size)) {
    history_.pop_front();
  }

  double trend = prev_trend_;
  if (history_.size() == static_cast<std::size_t>(cfg_.window_size)) {
    std::vector<double> x, y;
    x.reserve(history_.size());
    y.reserve(history_.size());
    for (const auto& [t, d] : history_) {
      x.push_back(t);
      y.push_back(d);
    }
    trend = LinearSlope(x, y);
  }
  Detect(trend, delta.send_delta_ms, delta.arrival_time);
}

void TrendlineEstimator::Detect(double trend, double /*send_delta_ms*/,
                                Time now) {
  double modified =
      std::min(num_deltas_, cfg_.max_deltas) * trend * cfg_.threshold_gain;
  modified_trend_ = modified;

  if (modified > threshold_) {
    if (overuse_start_ == Time::max()) {
      overuse_start_ = now;
      overuse_counter_ = 0;
    }
    ++overuse_counter_;
    // Overuse requires the trend to persist past the time threshold, span at
    // least two samples, and not be shrinking.
    if (now - overuse_start_ > cfg_.overuse_time && overuse_counter_ > 1 &&
        trend >= prev_trend_) {
      state_ = NetworkState::kOveruse;
    }
  } else if (modified < -threshold_) {
    overuse_start_ = Time::max();
    state_ = NetworkState::kUnderuse;
  } else {
    overuse_start_ = Time::max();
    state_ = NetworkState::kNormal;
  }
  prev_trend_ = trend;
  UpdateThreshold(modified, now);
}

void TrendlineEstimator::UpdateThreshold(double modified_trend, Time now) {
  if (last_update_ == Time{0}) last_update_ = now;
  // Large spikes (e.g. routing transients) are excluded from adaptation so a
  // single outlier cannot blow the threshold open (libwebrtc kMaxAdaptOffset).
  if (std::fabs(modified_trend) > threshold_ + 15.0) {
    last_update_ = now;
    return;
  }
  double k = std::fabs(modified_trend) < threshold_ ? cfg_.k_down : cfg_.k_up;
  double dt_ms = std::min((now - last_update_).millis(), 100.0);
  threshold_ += k * (std::fabs(modified_trend) - threshold_) * dt_ms;
  threshold_ = std::clamp(threshold_, cfg_.min_threshold, cfg_.max_threshold);
  last_update_ = now;
}

}  // namespace domino::gcc
