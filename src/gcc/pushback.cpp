#include "gcc/pushback.h"

#include <algorithm>

namespace domino::gcc {

PushbackController::PushbackController(PushbackConfig cfg) : cfg_(cfg) {}

void PushbackController::UpdateWindow(double target_bps, Duration rtt) {
  double horizon_s = (rtt + cfg_.queue_allowance).seconds();
  cwnd_bytes_ = std::max(target_bps / 8.0 * horizon_s, 3000.0);
}

double PushbackController::AdjustRate(double target_bps) {
  if (cwnd_bytes_ <= 0) return target_bps;
  double fill = outstanding_bytes_ / cwnd_bytes_;
  // Multiplicative backoff while the window is overfilled; gentle linear
  // recovery once in-flight data drains (libwebrtc's update schedule).
  if (fill > 1.5) {
    ratio_ *= 0.9;
  } else if (fill > 1.0) {
    ratio_ *= 0.95;
  } else if (fill < 0.1) {
    ratio_ = 1.0;
  } else {
    ratio_ = std::min(1.0, ratio_ + 0.05);
  }
  ratio_ = std::max(ratio_, cfg_.min_pushback_ratio);
  double rate = target_bps * ratio_;
  return std::max(rate, cfg_.min_bitrate_bps);
}

}  // namespace domino::gcc
