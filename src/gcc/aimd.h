// AIMD rate control (libwebrtc's AimdRateControl, Carlucci et al. 2016 §4.2).
//
// Consumes the overuse detector's state and the acknowledged bitrate and
// produces the delay-based target rate:
//   overuse  -> multiplicative decrease to beta x acked bitrate
//   underuse -> hold (let queues drain)
//   normal   -> probe upward: multiplicative while far from the last
//               decrease, cautious additive (about half a packet per
//               response time) when near it — the slow recovery the paper
//               measures at 30+ s (§6.2).
//
// Fast recovery: when the estimate is capped by 1.5x the acknowledged
// bitrate, a short-lived overuse followed by sustained high acked throughput
// snaps the estimate back up within a couple of seconds.
#pragma once

#include "common/time.h"
#include "common/types.h"

namespace domino::gcc {

struct AimdConfig {
  double beta = 0.85;                  ///< Multiplicative decrease factor.
  double multiplicative_gain = 1.08;   ///< Per-second far-from-max growth.
  double avg_packet_bytes = 1200.0;
  Duration response_time = Millis(200);///< RTT + reaction allowance.
  double min_bitrate_bps = 30e3;
  double max_bitrate_bps = 2.6e6;  ///< libwebrtc-style cap for a 2-party call.
  double ack_headroom = 1.5;           ///< Estimate cap: 1.5x acked bitrate.
  double start_bitrate_bps = 300e3;
  int fast_recovery_evidence = 5;      ///< Consecutive high-acked updates
                                       ///< required before fast recovery.
};

class AimdRateControl {
 public:
  explicit AimdRateControl(AimdConfig cfg = {});

  /// Updates the target given the detector state at time `now`.
  /// `acked_bps` is the acknowledged bitrate (0 if unknown yet).
  /// `app_limited` marks periods where the sender transmitted less than the
  /// target (e.g. pushback-limited); the acked-bitrate cap and fast-recovery
  /// logic are suspended then, since throughput no longer measures the link.
  void Update(NetworkState state, double acked_bps, Time now,
              bool app_limited = false);

  [[nodiscard]] double target_bps() const { return target_bps_; }
  /// True while in the cautious additive-increase regime.
  [[nodiscard]] bool near_max() const { return near_max_; }
  [[nodiscard]] long decrease_count() const { return decreases_; }
  /// Times the acked-bitrate fast-recovery path fired (§6.2).
  [[nodiscard]] long fast_recovery_count() const { return fast_recoveries_; }

 private:
  enum class Phase { kHold, kIncrease, kDecrease };

  void Decrease(double acked_bps, Time now);
  void Increase(double acked_bps, Time now, bool app_limited);

  AimdConfig cfg_;
  double target_bps_;
  Phase phase_ = Phase::kHold;
  bool near_max_ = false;
  Time last_update_{0};
  Time last_decrease_ = Time::max();
  long decreases_ = 0;
  long fast_recoveries_ = 0;
  int fast_evidence_ = 0;
};

}  // namespace domino::gcc
