// Campus-wide Zoom QoS dataset generator (§2.2 substitution).
//
// The paper analyses one week of Zoom QSS API records for every meeting on
// campus (409 days Wi-Fi, 86 days wired, 165 hours cellular of per-minute
// QoS samples). That dataset is proprietary; this generator synthesises
// per-minute records from models instead:
//
//   wired    — parametric: low log-normal jitter, rare loss events.
//   wifi     — a CSMA/CA DCF contention model (net/wifi.h): each minute
//              draws a contender count and transmits a frame sample; jitter
//              and loss fall out of backoff dynamics and retry exhaustion.
//   cellular — bootstrapped from actual simulated calls over the modelled
//              5G cells (including an edge-of-coverage variant): 10-second
//              trace chunks are reduced to per-minute jitter/loss samples.
//
// The paper's findings this must preserve: cellular jitter/loss > Wi-Fi >
// wired, outbound (uplink) worse than inbound on cellular, heavy tails.
#pragma once

#include <vector>

#include "common/rng.h"

namespace domino::sim {

enum class AccessNetwork { kWired, kWifi, kCellular };

const char* ToString(AccessNetwork n);

/// One per-minute Zoom QoS sample for one meeting participant.
struct ZoomQosRecord {
  AccessNetwork network = AccessNetwork::kWired;
  double jitter_in_ms = 0;   ///< Inbound (downlink) jitter.
  double jitter_out_ms = 0;  ///< Outbound (uplink) jitter.
  double loss_in_pct = 0;
  double loss_out_pct = 0;
  double rtt_ms = 0;
};

struct CampusConfig {
  // Minutes of data per technology; defaults scale the paper's mix down to
  // something a bench regenerates in seconds.
  int wired_minutes = 20000;
  int wifi_minutes = 80000;
  int cellular_minutes = 9900;  ///< 165 hours.

  double wifi_mean_contenders = 2.5;  ///< Mean stations sharing the BSS.
  int wifi_frames_per_minute = 120;   ///< Frame sample per direction.
  int cellular_chunk_seconds = 10;    ///< Bootstrap chunk length.
};

/// Generates the synthetic campus dataset. The first call builds the
/// cellular bootstrap pool by running short calls over the modelled cells
/// (a few seconds of compute); the pool is cached per (seed-independent)
/// process.
std::vector<ZoomQosRecord> GenerateCampusDataset(const CampusConfig& cfg,
                                                 Rng rng);

/// Per-chunk cellular statistics used by the bootstrap (exposed for tests).
struct CellularChunkStats {
  double jitter_in_ms = 0;
  double jitter_out_ms = 0;
  double loss_in_pct = 0;
  double loss_out_pct = 0;
  double rtt_ms = 0;
};

/// Builds the cellular bootstrap pool (runs the simulations).
std::vector<CellularChunkStats> BuildCellularPool(int chunk_seconds);

}  // namespace domino::sim
