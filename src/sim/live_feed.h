// Live-feed writer: replays a saved SessionDataset into a directory the
// way a real capture pipeline would produce it — meta.csv written complete
// up front (session identity is known when the call starts), stream CSVs
// appended chunk by chunk in virtual-time order. `domino replay` drives
// this to turn any simulated/saved dataset into a growing directory that
// `domino live --follow` can tail, and the chaos tests use the per-stream
// stall knob to freeze one stream mid-call (a dead sniffer) while the
// others keep flowing.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/dataset.h"

namespace domino::sim {

struct LiveFeedOptions {
  /// Virtual time appended per Step().
  Duration chunk = Millis(500);
  /// Per-stream stall time: records at or after this time are withheld
  /// (never written), simulating a collector that died mid-call. Indexed
  /// by telemetry::StreamId; Time::max() = never stall.
  std::array<Time, telemetry::kStreamCount> stall_after = {
      Time::max(), Time::max(), Time::max(), Time::max(), Time::max()};
};

class LiveFeedWriter {
 public:
  /// Writes meta.csv and all five stream headers immediately; stream rows
  /// follow via Step(). Records are replayed in time order per stream.
  LiveFeedWriter(const telemetry::SessionDataset& ds, std::string out_dir,
                 LiveFeedOptions opts = {});

  /// Appends every record with time in [cursor, cursor + chunk) to its
  /// stream file (flushed), advances the cursor, and returns true while
  /// anything remains to write.
  bool Step();

  /// Drains the remaining records in one call.
  void WriteAll() {
    while (Step()) {
    }
  }

  [[nodiscard]] Time cursor() const { return cursor_; }

 private:
  const telemetry::SessionDataset& ds_;
  std::string dir_;
  LiveFeedOptions opts_;
  Time cursor_;
  Time end_;
  /// Next unwritten index per stream, over time-sorted record orderings.
  std::array<std::vector<std::size_t>, telemetry::kStreamCount> order_;
  std::array<std::size_t, telemetry::kStreamCount> next_{};
};

}  // namespace domino::sim
