// Cell profiles for the four 5G cells measured in the paper (Table 1), plus
// a wired-only baseline. Parameters are chosen to reproduce each cell's
// qualitative behaviour documented in §3 and §5:
//
//   T-Mobile FDD 15 MHz  — heavily shared commercial cell: strong DL cross
//                          traffic, small per-grant PRB share (large delay
//                          spread), intermittent RRC releases (§5.3).
//   T-Mobile TDD 100 MHz — wide commercial cell: high bandwidth, mild cross
//                          traffic, TDD UL scheduling gaps.
//   Amarisoft (private)  — persistent poor UL channel + conservative UL MCS
//                          (§5.1.1), HARQ limit 4 -> RLC retx (§5.2.3),
//                          gNB logs available.
//   Mosolabs (private)   — proactive UL grants (§5.2.1/Fig. 16), good
//                          channel, gNB logs available.
#pragma once

#include <string>

#include "mac/cross_traffic.h"
#include "mac/link.h"
#include "net/path.h"
#include "phy/channel.h"
#include "phy/frame_structure.h"
#include "rlc/rlc_am.h"
#include "rrc/rrc.h"

namespace domino::sim {

struct CellProfile {
  std::string name;
  bool is_private = false;  ///< gNB logs (RLC/RRC) available to Domino.
  bool wired_only = false;  ///< Baseline: no cellular leg at all.

  phy::Duplex duplex = phy::Duplex::kTdd;
  int scs_khz = 30;
  std::string tdd_pattern = "DDDSU";
  double bandwidth_mhz = 20;

  mac::LinkConfig ul;
  mac::LinkConfig dl;
  phy::ChannelConfig ul_channel;
  phy::ChannelConfig dl_channel;
  rlc::RlcConfig rlc;
  rrc::RrcConfig rrc;

  int cross_ues_ul = 0;
  int cross_ues_dl = 0;
  mac::OnOffConfig cross_ul;
  mac::OnOffConfig cross_dl;

  // Stochastic deep-fade episodes (mobility/interference transients) layered
  // on the Gauss-Markov fading; these produce the paper's intermittent
  // "poor channel" cause in longitudinal runs.
  double fade_rate_per_min_ul = 0.0;
  double fade_rate_per_min_dl = 0.0;
  double fade_duration_s = 2.0;
  double fade_depth_db = -12.0;

  net::PathConfig wired_path;  ///< Non-cellular leg (campus <-> server).
};

/// T-Mobile 622.85 MHz / 15 MHz / FDD commercial cell.
CellProfile TMobileFdd15();
/// T-Mobile 2506.95 MHz / 100 MHz / TDD commercial cell.
CellProfile TMobileTdd100();
/// Amarisoft Callbox private cell (3547.20 MHz / 20 MHz / TDD).
CellProfile Amarisoft();
/// Mosolabs Canopy private cell (3630.72 MHz / 20 MHz / TDD).
CellProfile Mosolabs();
/// Wired-to-wired baseline (Figs. 2-4 comparison).
CellProfile WiredBaseline();

/// All four 5G cells, in Table 1 order.
std::vector<CellProfile> AllCells();

}  // namespace domino::sim
