#include "sim/zoom_campus.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "net/wifi.h"
#include "sim/call_session.h"
#include "sim/cell_config.h"

namespace domino::sim {

const char* ToString(AccessNetwork n) {
  switch (n) {
    case AccessNetwork::kWired:
      return "wired";
    case AccessNetwork::kWifi:
      return "wifi";
    default:
      return "cellular";
  }
}

namespace {

/// Edge-of-coverage cellular profile: campus users far from the serving
/// cell see deeper, more frequent fades and a constrained device buffer —
/// the population that dominates the loss tail of the Zoom data.
CellProfile EdgeOfCoverage() {
  CellProfile p = Amarisoft();
  p.name = "EdgeOfCoverage";
  p.ul_channel.base_sinr_db = 5.5;
  // Outage-grade fades (passing behind a building, elevator, parking
  // garage): the radio goes dark for seconds while the sender is still at
  // full rate, overflowing the constrained device buffer before GCC backs
  // off — the loss the campus Zoom data shows for cellular users.
  p.fade_rate_per_min_ul = 5.0;
  p.fade_rate_per_min_dl = 2.0;
  p.fade_duration_s = 2.5;
  p.fade_depth_db = -25.0;
  p.rlc.max_buffer_bytes = 64 * 1024;  // small device buffer -> drops
  // A shared suburban macro also carries other users.
  p.cross_ues_dl = 4;
  p.cross_dl = {.mean_on_s = 1.5, .mean_off_s = 6.0, .rate_bps = 20e6};
  p.dl.cross_traffic_weight = 2.0;
  return p;
}

/// Jitter of a delay sequence, as Zoom's per-minute QoS reports it:
/// dispersion of the delays over the interval (standard deviation).
/// Consecutive-packet deltas would understate cellular jitter, where
/// packets of one burst share a queue but bursts see very different delays.
double JitterOf(const std::vector<double>& owd_ms) {
  if (owd_ms.size() < 2) return 0.0;
  double mean = 0;
  for (double v : owd_ms) mean += v;
  mean /= static_cast<double>(owd_ms.size());
  double s2 = 0;
  for (double v : owd_ms) s2 += (v - mean) * (v - mean);
  return std::sqrt(s2 / static_cast<double>(owd_ms.size() - 1));
}

std::vector<CellularChunkStats> BuildPoolUncached(int chunk_seconds) {
  std::vector<CellularChunkStats> pool;
  const std::vector<CellProfile> profiles = {
      TMobileFdd15(), TMobileTdd100(), Amarisoft(), EdgeOfCoverage()};
  std::uint64_t seed = 101;
  for (const CellProfile& profile : profiles) {
    SessionConfig cfg;
    cfg.profile = profile;
    cfg.duration = Seconds(60);
    cfg.seed = seed++;
    CallSession session(cfg);
    telemetry::SessionDataset ds = session.Run();

    // Slice media packets into chunks by send time.
    const Duration chunk = Seconds(static_cast<double>(chunk_seconds));
    auto chunk_count = static_cast<std::size_t>(
        ds.duration() / chunk);
    struct Acc {
      std::vector<double> owd_ul, owd_dl;
      long lost_ul = 0, total_ul = 0, lost_dl = 0, total_dl = 0;
    };
    std::vector<Acc> accs(chunk_count);
    for (const auto& p : ds.packets) {
      if (p.is_rtcp) continue;
      auto idx = static_cast<std::size_t>((p.sent - ds.begin) / chunk);
      if (idx >= chunk_count) continue;
      Acc& a = accs[idx];
      if (p.dir == Direction::kUplink) {
        ++a.total_ul;
        if (p.lost()) {
          ++a.lost_ul;
        } else {
          a.owd_ul.push_back(p.one_way_delay().millis());
        }
      } else {
        ++a.total_dl;
        if (p.lost()) {
          ++a.lost_dl;
        } else {
          a.owd_dl.push_back(p.one_way_delay().millis());
        }
      }
    }
    for (const Acc& a : accs) {
      if (a.total_ul == 0 || a.total_dl == 0) continue;
      CellularChunkStats s;
      s.jitter_out_ms = JitterOf(a.owd_ul);  // outbound = uplink
      s.jitter_in_ms = JitterOf(a.owd_dl);
      s.loss_out_pct = 100.0 * static_cast<double>(a.lost_ul) /
                       static_cast<double>(a.total_ul);
      s.loss_in_pct = 100.0 * static_cast<double>(a.lost_dl) /
                      static_cast<double>(a.total_dl);
      double med_ul = a.owd_ul.empty() ? 0 : a.owd_ul[a.owd_ul.size() / 2];
      double med_dl = a.owd_dl.empty() ? 0 : a.owd_dl[a.owd_dl.size() / 2];
      s.rtt_ms = med_ul + med_dl;
      pool.push_back(s);
    }
  }
  return pool;
}

ZoomQosRecord DrawWired(Rng& rng) {
  ZoomQosRecord r;
  r.network = AccessNetwork::kWired;
  r.jitter_in_ms = rng.LogNormal(-0.1, 0.45);
  r.jitter_out_ms = rng.LogNormal(-0.1, 0.45);
  if (rng.Chance(0.02)) {
    r.loss_in_pct = std::min(rng.LogNormal(-2.3, 0.8), 5.0);
  }
  if (rng.Chance(0.025)) {
    r.loss_out_pct = std::min(rng.LogNormal(-2.2, 0.8), 5.0);
  }
  r.rtt_ms = std::max(1.0, rng.Normal(15, 4));
  return r;
}

ZoomQosRecord DrawWifi(const CampusConfig& cfg, Rng& rng) {
  ZoomQosRecord r;
  r.network = AccessNetwork::kWifi;
  // Contention varies by minute: mostly light, occasionally a crowded BSS.
  int contenders = 1 + rng.Poisson(cfg.wifi_mean_contenders - 1);
  net::WifiChannel channel(net::WifiConfig{}, rng.Fork(rng.UniformInt(1, 1 << 30)));

  auto sample = [&](int n) {
    std::vector<double> delays;
    long drops = 0;
    for (int i = 0; i < cfg.wifi_frames_per_minute; ++i) {
      auto out = channel.SendFrame(n);
      if (out.delivered) {
        delays.push_back(out.delay_ms);
      } else {
        ++drops;
      }
    }
    double loss =
        100.0 * static_cast<double>(drops) / cfg.wifi_frames_per_minute;
    return std::make_pair(JitterOf(delays), loss);
  };
  // Downlink comes from the AP (contends with the stations); the client's
  // uplink additionally competes with the AP itself.
  auto [jin, lin] = sample(contenders);
  auto [jout, lout] = sample(contenders + 1);
  r.jitter_in_ms = jin;
  r.jitter_out_ms = jout;
  r.loss_in_pct = lin;
  r.loss_out_pct = lout;
  r.rtt_ms = std::max(2.0, rng.Normal(22, 8));
  return r;
}

ZoomQosRecord DrawCellular(const std::vector<CellularChunkStats>& pool,
                           Rng& rng) {
  ZoomQosRecord r;
  r.network = AccessNetwork::kCellular;
  const CellularChunkStats& s =
      pool[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(pool.size()) - 1))];
  // Small multiplicative noise so repeated draws of one chunk differ.
  double noise = rng.LogNormal(0.0, 0.15);
  r.jitter_in_ms = s.jitter_in_ms * noise;
  r.jitter_out_ms = s.jitter_out_ms * noise;
  r.loss_in_pct = s.loss_in_pct;
  r.loss_out_pct = s.loss_out_pct;
  r.rtt_ms = std::max(5.0, s.rtt_ms * noise + 20.0);  // + core/Internet legs
  return r;
}

}  // namespace

std::vector<CellularChunkStats> BuildCellularPool(int chunk_seconds) {
  return BuildPoolUncached(chunk_seconds);
}

std::vector<ZoomQosRecord> GenerateCampusDataset(const CampusConfig& cfg,
                                                 Rng rng) {
  // The cellular pool depends only on the chunk length: cache it across
  // calls (the bench sweeps call this several times).
  static std::mutex mu;
  static std::map<int, std::vector<CellularChunkStats>> cache;
  const std::vector<CellularChunkStats>* pool = nullptr;
  if (cfg.cellular_minutes > 0) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(cfg.cellular_chunk_seconds);
    if (it == cache.end()) {
      it = cache.emplace(cfg.cellular_chunk_seconds,
                         BuildPoolUncached(cfg.cellular_chunk_seconds))
               .first;
    }
    pool = &it->second;
  }

  std::vector<ZoomQosRecord> out;
  out.reserve(static_cast<std::size_t>(cfg.wired_minutes + cfg.wifi_minutes +
                                       cfg.cellular_minutes));
  for (int i = 0; i < cfg.wired_minutes; ++i) {
    out.push_back(DrawWired(rng));
  }
  for (int i = 0; i < cfg.wifi_minutes; ++i) {
    out.push_back(DrawWifi(cfg, rng));
  }
  for (int i = 0; i < cfg.cellular_minutes; ++i) {
    out.push_back(DrawCellular(*pool, rng));
  }
  return out;
}

}  // namespace domino::sim
