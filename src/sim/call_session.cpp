#include "sim/call_session.h"

#include <algorithm>

namespace domino::sim {

rtc::SenderConfig DefaultUeSenderConfig() {
  rtc::SenderConfig cfg;
  // The UE's camera feed sustains 540p at ~1.4 Mbps; 720p needs headroom the
  // measured cells rarely provide (Table 3: UL streams ~94% 540p).
  cfg.encoder.ladder = {
      {360, 0, 500e3},
      {540, 700e3, 1.4e6},
      {720, 2.0e6, 2.6e6},
      {1080, 3.2e6, 4.2e6},
  };
  cfg.gcc.aimd.start_bitrate_bps = 600e3;
  return cfg;
}

rtc::SenderConfig DefaultRemoteSenderConfig() {
  rtc::SenderConfig cfg;
  // The remote client's source is 360p-dominant (Table 3: DL streams ~94%
  // 360p) even though its GCC estimate can run much higher (Fig. 8e-h).
  cfg.encoder.ladder = {
      {360, 0, 800e3},
      {540, 2.4e6, 3.0e6},
      {720, 3.4e6, 4.0e6},
      {1080, 4.4e6, 5.0e6},
  };
  cfg.gcc.aimd.start_bitrate_bps = 600e3;
  return cfg;
}

CallSession::CallSession(SessionConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  const CellProfile& p = cfg_.profile;
  ds_.cell_name = p.name;
  ds_.is_private_cell = p.is_private;
  ds_.begin = Time{0};
  ds_.end = Time{0} + cfg_.duration;

  if (!p.wired_only) {
    frame_ = std::make_unique<phy::FrameStructure>(p.duplex, p.scs_khz,
                                                   p.tdd_pattern);
    rrc_ = std::make_unique<rrc::RrcStateMachine>(p.rrc, rng_.Fork(11));
    ul_link_ = std::make_unique<mac::CellLink>(
        queue_, *frame_, p.ul,
        phy::ChannelModel(p.ul_channel, rng_.Fork(21)), p.rlc, *rrc_,
        rng_.Fork(31));
    dl_link_ = std::make_unique<mac::CellLink>(
        queue_, *frame_, p.dl,
        phy::ChannelModel(p.dl_channel, rng_.Fork(22)), p.rlc, *rrc_,
        rng_.Fork(32));
    for (int i = 0; i < p.cross_ues_ul; ++i) {
      ul_link_->cross_traffic().AddSource(mac::OnOffSource(
          p.cross_ul, 0x100 + static_cast<std::uint32_t>(i),
          rng_.Fork(100 + static_cast<std::uint64_t>(i))));
    }
    for (int i = 0; i < p.cross_ues_dl; ++i) {
      dl_link_->cross_traffic().AddSource(mac::OnOffSource(
          p.cross_dl, 0x200 + static_cast<std::uint32_t>(i),
          rng_.Fork(200 + static_cast<std::uint64_t>(i))));
    }
  }
  // Layer stochastic deep-fade episodes over the fading processes.
  auto add_fades = [this](mac::CellLink* link, double rate_per_min,
                          std::uint64_t tag) {
    if (link == nullptr || rate_per_min <= 0) return;
    Rng fade_rng = rng_.Fork(tag);
    double t_s = fade_rng.ExpMean(60.0 / rate_per_min);
    while (t_s < cfg_.duration.seconds()) {
      double len = std::max(0.3, fade_rng.Normal(cfg_.profile.fade_duration_s,
                                                 cfg_.profile.fade_duration_s *
                                                     0.3));
      link->channel().AddEpisode(phy::ChannelEpisode{
          Time{0} + Seconds(t_s), Time{0} + Seconds(t_s + len),
          cfg_.profile.fade_depth_db});
      t_s += len + fade_rng.ExpMean(60.0 / rate_per_min);
    }
  };
  add_fades(ul_link_.get(), p.fade_rate_per_min_ul, 61);
  add_fades(dl_link_.get(), p.fade_rate_per_min_dl, 62);

  wired_ul_ = std::make_unique<net::WiredPath>(queue_, p.wired_path,
                                               rng_.Fork(41));
  wired_dl_ = std::make_unique<net::WiredPath>(queue_, p.wired_path,
                                               rng_.Fork(42));

  ue_sender_ =
      std::make_unique<rtc::MediaSender>(cfg_.ue_sender, rng_.Fork(51));
  remote_sender_ =
      std::make_unique<rtc::MediaSender>(cfg_.remote_sender, rng_.Fork(52));
  ue_receiver_ = std::make_unique<rtc::MediaReceiver>(cfg_.receiver);
  remote_receiver_ = std::make_unique<rtc::MediaReceiver>(cfg_.receiver);
  ue_audio_ = std::make_unique<rtc::AudioReceiver>(cfg_.audio);
  remote_audio_ = std::make_unique<rtc::AudioReceiver>(cfg_.audio);

  if (ul_link_) {
    ul_link_->on_deliver = [this](std::uint64_t id, Time t) {
      OnUplinkAtGnb(id, t);
    };
    ul_link_->on_drop = [this](std::uint64_t id) { OnDrop(id); };
    ul_link_->on_dci = [this](const telemetry::DciRecord& r) {
      ds_.dci.push_back(r);
    };
  }
  if (dl_link_) {
    dl_link_->on_deliver = [this](std::uint64_t id, Time t) {
      OnArriveAtUe(id, t);
    };
    dl_link_->on_drop = [this](std::uint64_t id) { OnDrop(id); };
    dl_link_->on_dci = [this](const telemetry::DciRecord& r) {
      ds_.dci.push_back(r);
    };
  }
}

CallSession::~CallSession() = default;

std::uint64_t CallSession::NewRecord(Direction dir, int bytes, bool is_rtcp,
                                     std::uint64_t frame_id, Time sent) {
  std::uint64_t id = next_record_id_++;
  InFlight inf;
  inf.record.id = id;
  inf.record.dir = dir;
  inf.record.size_bytes = bytes;
  inf.record.sent = sent;
  inf.record.is_rtcp = is_rtcp;
  inf.record.frame_id = frame_id;
  inf.is_rtcp = is_rtcp;
  in_flight_.emplace(id, std::move(inf));
  return id;
}

void CallSession::FinalizeRecord(telemetry::PacketRecord record) {
  // Timestamps taken on the remote host carry its clock offset: the send
  // stamp of DL packets and the receive stamp of UL packets.
  if (record.dir == Direction::kDownlink) {
    record.sent = record.sent + cfg_.remote_clock_offset;
  } else if (!record.lost()) {
    record.received = record.received + cfg_.remote_clock_offset;
  }
  ds_.packets.push_back(record);
}

void CallSession::RouteUplink(std::uint64_t rec_id) {
  const InFlight& inf = in_flight_.at(rec_id);
  if (ul_link_) {
    ul_link_->Enqueue(rec_id, inf.record.size_bytes);
  } else {
    // Wired-only baseline: straight through the wired path.
    wired_ul_->Send(rec_id, inf.record.size_bytes,
                    [this](std::uint64_t id, Time t) {
                      OnArriveAtRemote(id, t);
                    });
  }
}

void CallSession::RouteDownlink(std::uint64_t rec_id) {
  const InFlight& inf = in_flight_.at(rec_id);
  wired_dl_->Send(rec_id, inf.record.size_bytes,
                  [this](std::uint64_t id, Time t) {
                    OnDownlinkAtGnb(id, t);
                  });
}

void CallSession::OnUplinkAtGnb(std::uint64_t rec_id, Time /*t*/) {
  auto it = in_flight_.find(rec_id);
  if (it == in_flight_.end()) return;
  wired_ul_->Send(rec_id, it->second.record.size_bytes,
                  [this](std::uint64_t id, Time t2) {
                    OnArriveAtRemote(id, t2);
                  });
}

void CallSession::OnDownlinkAtGnb(std::uint64_t rec_id, Time t) {
  auto it = in_flight_.find(rec_id);
  if (it == in_flight_.end()) return;
  if (dl_link_) {
    dl_link_->Enqueue(rec_id, it->second.record.size_bytes);
  } else {
    OnArriveAtUe(rec_id, t);
  }
}

void CallSession::OnArriveAtRemote(std::uint64_t rec_id, Time t) {
  auto it = in_flight_.find(rec_id);
  if (it == in_flight_.end()) return;
  InFlight inf = std::move(it->second);
  in_flight_.erase(it);
  inf.record.received = t;
  FinalizeRecord(inf.record);
  if (inf.is_rtcp) {
    inf.fb.feedback_time = t;
    // Loss reports trigger RTX: retransmissions re-enter the DL path.
    for (const rtc::MediaPacket& p : remote_sender_->OnFeedback(inf.fb)) {
      std::uint64_t rec = NewRecord(Direction::kDownlink, p.bytes, false,
                                    p.frame_id, t);
      in_flight_.at(rec).media = p;
      RouteDownlink(rec);
    }
  } else if (inf.is_audio) {
    remote_audio_->OnFrame(inf.audio_seq, inf.audio_capture, t);
  } else {
    remote_receiver_->OnMediaPacket(inf.media, t);
  }
}

void CallSession::OnArriveAtUe(std::uint64_t rec_id, Time t) {
  auto it = in_flight_.find(rec_id);
  if (it == in_flight_.end()) return;
  InFlight inf = std::move(it->second);
  in_flight_.erase(it);
  inf.record.received = t;
  FinalizeRecord(inf.record);
  if (inf.is_rtcp) {
    inf.fb.feedback_time = t;
    for (const rtc::MediaPacket& p : ue_sender_->OnFeedback(inf.fb)) {
      std::uint64_t rec = NewRecord(Direction::kUplink, p.bytes, false,
                                    p.frame_id, t);
      in_flight_.at(rec).media = p;
      RouteUplink(rec);
    }
  } else if (inf.is_audio) {
    ue_audio_->OnFrame(inf.audio_seq, inf.audio_capture, t);
  } else {
    ue_receiver_->OnMediaPacket(inf.media, t);
  }
}

void CallSession::OnDrop(std::uint64_t rec_id) {
  auto it = in_flight_.find(rec_id);
  if (it == in_flight_.end()) return;
  InFlight inf = std::move(it->second);
  in_flight_.erase(it);
  FinalizeRecord(inf.record);  // received stays Time::max() = lost
}

void CallSession::CaptureTickUe() {
  Time now = queue_.now();
  auto burst = ue_sender_->OnCaptureTick(now);
  for (const rtc::MediaPacket& p : burst) {
    std::uint64_t rec = NewRecord(Direction::kUplink, p.bytes, false,
                                  p.frame_id, p.send_time);
    in_flight_.at(rec).media = p;
    queue_.ScheduleAt(p.send_time, [this, rec] { RouteUplink(rec); });
  }
}

void CallSession::CaptureTickRemote() {
  Time now = queue_.now();
  auto burst = remote_sender_->OnCaptureTick(now);
  for (const rtc::MediaPacket& p : burst) {
    std::uint64_t rec = NewRecord(Direction::kDownlink, p.bytes, false,
                                  p.frame_id, p.send_time);
    in_flight_.at(rec).media = p;
    queue_.ScheduleAt(p.send_time, [this, rec] { RouteDownlink(rec); });
  }
}

void CallSession::AudioTick(int client) {
  // One fixed-size audio frame per 20 ms per sender, riding the same path
  // as the video (UE audio -> UL; remote audio -> DL).
  Time now = queue_.now();
  std::uint64_t seq = next_audio_seq_[static_cast<std::size_t>(client)]++;
  Direction dir = client == 0 ? Direction::kUplink : Direction::kDownlink;
  std::uint64_t rec = NewRecord(dir, cfg_.audio.packet_bytes, false, seq, now);
  InFlight& inf = in_flight_.at(rec);
  inf.is_audio = true;
  inf.record.is_audio = true;
  inf.audio_seq = seq;
  inf.audio_capture = now;
  if (client == 0) {
    RouteUplink(rec);
  } else {
    RouteDownlink(rec);
  }
}

void CallSession::FeedbackTickUe() {
  // Feedback about the DL media, sent from the UE over the uplink.
  Time now = queue_.now();
  ue_receiver_->AdvanceTo(now);
  gcc::TransportFeedback fb = ue_receiver_->TakeFeedback();
  if (fb.packets.empty()) return;
  int bytes = 40 + static_cast<int>(fb.packets.size()) * 8;
  std::uint64_t rec = NewRecord(Direction::kUplink, bytes, true, 0, now);
  in_flight_.at(rec).fb = std::move(fb);
  RouteUplink(rec);
}

void CallSession::FeedbackTickRemote() {
  Time now = queue_.now();
  remote_receiver_->AdvanceTo(now);
  gcc::TransportFeedback fb = remote_receiver_->TakeFeedback();
  if (fb.packets.empty()) return;
  int bytes = 40 + static_cast<int>(fb.packets.size()) * 8;
  std::uint64_t rec = NewRecord(Direction::kDownlink, bytes, true, 0, now);
  in_flight_.at(rec).fb = std::move(fb);
  RouteDownlink(rec);
}

void CallSession::SampleStats(int client, Time now) {
  rtc::MediaSender& snd = client == 0 ? *ue_sender_ : *remote_sender_;
  rtc::MediaReceiver& rcv = client == 0 ? *ue_receiver_ : *remote_receiver_;
  rcv.AdvanceTo(now);

  telemetry::WebRtcStatsRecord r;
  r.time = now;
  r.inbound_fps = rcv.inbound_fps(now);
  r.outbound_fps = snd.outbound_fps(now);
  r.outbound_resolution = snd.encoder().resolution();
  r.jitter_buffer_ms = rcv.jitter_buffer().last_wait_ms();
  r.target_bitrate_bps = snd.gcc().target_bitrate_bps();
  r.pushback_bitrate_bps = snd.gcc().pushback_bitrate_bps();
  r.outstanding_bytes = snd.gcc().outstanding_bytes();
  r.cwnd_bytes = snd.gcc().cwnd_bytes();
  r.gcc_state = snd.gcc().state();
  r.delay_slope = snd.gcc().delay_slope();

  // Concealment comes from the audio playout engine: the fraction of
  // samples synthesised since the previous stats sample.
  rtc::AudioReceiver& audio = client == 0 ? *ue_audio_ : *remote_audio_;
  audio.AdvanceTo(now);
  auto& last = last_audio_counts_[static_cast<std::size_t>(client)];
  long played_d = audio.played() - last.first;
  long concealed_d = audio.concealed() - last.second;
  last = {audio.played(), audio.concealed()};
  long total = played_d + concealed_d;
  r.concealed_ratio =
      total == 0 ? 0.0 : static_cast<double>(concealed_d) / total;
  r.frozen = rcv.jitter_buffer().frozen(now);

  ds_.stats[static_cast<std::size_t>(client)].push_back(r);
}

void CallSession::StatsTick() {
  Time now = queue_.now();
  SampleStats(0, now);
  SampleStats(1, now);
  if (rrc_) {
    double rnti = rrc_->rnti();
    if (rnti != last_rnti_) {
      ds_.ue_rnti.Push(now, rnti);
      last_rnti_ = rnti;
    }
  } else if (last_rnti_ < 0) {
    ds_.ue_rnti.Push(now, 0);
    last_rnti_ = 0;
  }
}

void CallSession::GnbLogTick() {
  if (!cfg_.profile.is_private || !ul_link_) return;
  Time now = queue_.now();
  auto sample = [&](mac::CellLink& link, Direction dir, std::size_t idx) {
    telemetry::GnbLogRecord g;
    g.time = now;
    g.rnti = rrc_->rnti();
    g.dir = dir;
    g.rlc_buffer_bytes = link.rlc().BufferedBytes();
    long retx = link.rlc().retx_events();
    g.rlc_retx = retx > last_rlc_retx_[idx];
    last_rlc_retx_[idx] = retx;
    g.rrc_state = rrc_->state();
    ds_.gnb_log.push_back(g);
  };
  sample(*ul_link_, Direction::kUplink, 0);
  sample(*dl_link_, Direction::kDownlink, 1);
}

telemetry::SessionDataset CallSession::Run() {
  if (ul_link_) ul_link_->Start();
  if (dl_link_) dl_link_->Start();
  if (rrc_) {
    last_rnti_ = rrc_->rnti();
    ds_.ue_rnti.Push(Time{0}, last_rnti_);
    // NR-Scope tracks the UE's RNTI continuously; record changes instantly
    // so post-reconnect DCIs are never misattributed to cross traffic.
    rrc_->on_rnti_change = [this](Time t, std::uint32_t rnti) {
      ds_.ue_rnti.Push(t, rnti);
      last_rnti_ = rnti;
    };
  }

  // Periodic drivers. The remote capture clock is offset by half a frame so
  // the two senders don't tick in lockstep.
  auto every = [this](Duration interval, Duration offset, auto&& fn) {
    timers_.push_back(std::make_unique<std::function<void()>>());
    std::function<void()>* loop = timers_.back().get();
    *loop = [this, interval, fn, loop] {
      fn();
      queue_.ScheduleAfter(interval, *loop);
    };
    queue_.ScheduleAt(Time{0} + offset, *loop);
  };
  every(Millis(25), Millis(7), [this] {
    Time now = queue_.now();
    ue_sender_->OnProcess(now);
    remote_sender_->OnProcess(now);
  });
  every(cfg_.capture_interval, Millis(5), [this] { CaptureTickUe(); });
  every(cfg_.capture_interval, Millis(21), [this] { CaptureTickRemote(); });
  every(cfg_.audio.frame_interval, Millis(9), [this] { AudioTick(0); });
  every(cfg_.audio.frame_interval, Millis(11), [this] { AudioTick(1); });
  every(cfg_.feedback_interval, Millis(13), [this] { FeedbackTickUe(); });
  every(cfg_.feedback_interval, Millis(17), [this] { FeedbackTickRemote(); });
  every(cfg_.stats_interval, Millis(25), [this] { StatsTick(); });
  every(cfg_.gnb_log_interval, Millis(3), [this] { GnbLogTick(); });

  queue_.RunUntil(Time{0} + cfg_.duration);

  // Finalise: unresolved packets older than 2 s are real losses; newer ones
  // are an end-of-run truncation artifact and are discarded.
  Time cutoff = queue_.now() - Seconds(2.0);
  for (auto& [id, inf] : in_flight_) {
    if (inf.record.sent <= cutoff) FinalizeRecord(inf.record);
  }
  in_flight_.clear();
  if (ds_.ue_rnti.empty()) ds_.ue_rnti.Push(Time{0}, 0);
  return std::move(ds_);
}

}  // namespace domino::sim
