#include "sim/cell_config.h"

#include "phy/tbs.h"

namespace domino::sim {

namespace {

/// Fills both link configs with shared carrier/cell parameters.
void SetCarrier(CellProfile& p) {
  phy::CarrierConfig carrier;
  carrier.total_prbs = phy::PrbsForBandwidth(p.bandwidth_mhz, p.scs_khz);
  p.ul.carrier = carrier;
  p.dl.carrier = carrier;
  p.ul.dir = Direction::kUplink;
  p.dl.dir = Direction::kDownlink;
}

}  // namespace

CellProfile TMobileFdd15() {
  CellProfile p;
  p.name = "T-Mobile FDD 15MHz";
  p.is_private = false;
  p.duplex = phy::Duplex::kFdd;
  p.scs_khz = 15;
  p.bandwidth_mhz = 15;
  SetCarrier(p);

  // Heavily shared cell: small per-grant share -> many TBs per video frame
  // (Fig. 14b's large delay spread).
  p.ul.grant_delay = Millis(8);
  p.ul.harq_rtt = Millis(8);
  p.dl.harq_rtt = Millis(8);
  p.ul.ue_max_prbs = 12;
  p.dl.ue_max_prbs = 24;
  p.ul.mcs_offset = -2;
  p.dl.mcs_offset = -2;

  p.ul_channel = {.base_sinr_db = 15.0, .sigma_db = 2.5, .coherence_ms = 80};
  p.dl_channel = {.base_sinr_db = 16.0, .sigma_db = 2.5, .coherence_ms = 80};

  // Prevalent asymmetric cross traffic: many backlogged DL flows that the
  // proportional-fair scheduler favours (§5.1.2 / Fig. 8f).
  p.cross_ues_dl = 12;
  p.cross_dl = {.mean_on_s = 2.5, .mean_off_s = 4.5, .rate_bps = 40e6};
  p.dl.cross_traffic_weight = 3.5;
  p.cross_ues_ul = 2;
  p.cross_ul = {.mean_on_s = 0.5, .mean_off_s = 12.0, .rate_bps = 10e6};

  // Intermittent RRC releases during active transfer (§5.3).
  p.rrc.random_release_rate_per_min = 0.6;
  p.rrc.transition_duration = Millis(300);

  p.fade_rate_per_min_ul = 0.3;
  p.fade_rate_per_min_dl = 0.3;
  p.fade_depth_db = -13.0;

  // GCP-hosted peer ~150 miles away.
  p.wired_path = {.base_delay = Millis(12), .jitter_sigma = 0.5,
                  .jitter_scale_ms = 0.5, .loss_rate = 1e-4};
  return p;
}

CellProfile TMobileTdd100() {
  CellProfile p;
  p.name = "T-Mobile TDD 100MHz";
  p.is_private = false;
  p.duplex = phy::Duplex::kTdd;
  p.scs_khz = 30;
  p.tdd_pattern = "DDDSU";
  p.bandwidth_mhz = 100;
  SetCarrier(p);

  p.ul.grant_delay = Millis(12);
  p.ul.harq_rtt = Millis(5);
  p.dl.harq_rtt = Millis(5);
  p.ul_channel = {.base_sinr_db = 17.0, .sigma_db = 2.0, .coherence_ms = 80};
  p.dl_channel = {.base_sinr_db = 18.0, .sigma_db = 2.0, .coherence_ms = 80};

  p.cross_ues_dl = 6;
  p.cross_dl = {.mean_on_s = 0.8, .mean_off_s = 8.0, .rate_bps = 80e6};
  p.dl.cross_traffic_weight = 1.5;
  p.cross_ues_ul = 2;
  p.cross_ul = {.mean_on_s = 0.5, .mean_off_s = 10.0, .rate_bps = 20e6};

  p.fade_rate_per_min_ul = 0.2;
  p.fade_rate_per_min_dl = 0.2;
  p.fade_depth_db = -12.0;

  p.wired_path = {.base_delay = Millis(12), .jitter_sigma = 0.5,
                  .jitter_scale_ms = 0.5, .loss_rate = 1e-4};
  return p;
}

CellProfile Amarisoft() {
  CellProfile p;
  p.name = "Amarisoft";
  p.is_private = true;
  p.duplex = phy::Duplex::kTdd;
  p.scs_khz = 30;
  p.tdd_pattern = "DDDSU";
  p.bandwidth_mhz = 20;
  SetCarrier(p);

  p.ul.grant_delay = Millis(18);
  p.ul.harq_rtt = Millis(10);
  p.dl.harq_rtt = Millis(10);

  // Persistent poor UL channel + conservative UL MCS selection (§5.1.1):
  // the UL bitrate sits far below the DL (Fig. 8g).
  p.ul_channel = {.base_sinr_db = 8.5, .sigma_db = 3.5, .coherence_ms = 60};
  p.dl_channel = {.base_sinr_db = 16.0, .sigma_db = 2.0, .coherence_ms = 80};
  p.ul.mcs_offset = -2;
  p.ul.prb_cap_sinr_db = 8.0;
  p.ul.prb_cap_frac = 0.6;
  // Weaker combining makes HARQ exhaustion (and thus RLC retx, §5.2.3)
  // observable during deep fades.
  p.ul.harq_combining_gain_db = 1.5;
  p.dl.harq_combining_gain_db = 3.0;

  // RLC recovery: four failed HARQ rounds (~40 ms) plus the status-report
  // turnaround ~= the paper's 105 ms inflation (Fig. 18).
  p.rlc.retx_delay = Millis(65);

  // Frequent UL fades: the persistent poor-channel episodes of Fig. 12.
  p.fade_rate_per_min_ul = 1.5;
  p.fade_rate_per_min_dl = 0.1;
  p.fade_duration_s = 2.5;
  p.fade_depth_db = -9.0;

  // Private cell: essentially no cross traffic.
  p.cross_ues_dl = 1;
  p.cross_dl = {.mean_on_s = 0.3, .mean_off_s = 30.0, .rate_bps = 10e6};

  // Local wired peer in the same subnet as the 5G core.
  p.wired_path = {.base_delay = Millis(2), .jitter_sigma = 0.3,
                  .jitter_scale_ms = 0.15, .loss_rate = 0.0};
  return p;
}

CellProfile Mosolabs() {
  CellProfile p;
  p.name = "Mosolabs";
  p.is_private = true;
  p.duplex = phy::Duplex::kTdd;
  p.scs_khz = 30;
  p.tdd_pattern = "DDDSU";
  p.bandwidth_mhz = 20;
  SetCarrier(p);

  p.ul.grant_delay = Millis(10);
  p.ul.harq_rtt = Millis(8);
  p.dl.harq_rtt = Millis(8);
  // Proactive UL grants: small pre-allocations every UL slot (Fig. 16).
  p.ul.proactive_grant_bytes = 900;
  p.ul.mcs_offset = -1;
  p.dl.mcs_offset = -1;

  p.ul_channel = {.base_sinr_db = 14.0, .sigma_db = 2.0, .coherence_ms = 80};
  p.dl_channel = {.base_sinr_db = 16.0, .sigma_db = 2.0, .coherence_ms = 80};

  p.cross_ues_dl = 1;
  p.cross_dl = {.mean_on_s = 0.3, .mean_off_s = 30.0, .rate_bps = 10e6};

  p.wired_path = {.base_delay = Millis(2), .jitter_sigma = 0.3,
                  .jitter_scale_ms = 0.15, .loss_rate = 0.0};
  return p;
}

CellProfile WiredBaseline() {
  CellProfile p;
  p.name = "Wired";
  p.wired_only = true;
  p.duplex = phy::Duplex::kFdd;
  p.scs_khz = 15;
  p.bandwidth_mhz = 20;
  SetCarrier(p);
  p.wired_path = {.base_delay = Millis(12), .jitter_sigma = 0.5,
                  .jitter_scale_ms = 0.4, .loss_rate = 5e-5};
  return p;
}

std::vector<CellProfile> AllCells() {
  return {TMobileTdd100(), TMobileFdd15(), Amarisoft(), Mosolabs()};
}

}  // namespace domino::sim
