#include "sim/live_feed.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/csv.h"
#include "telemetry/io.h"
#include "telemetry/tail.h"

namespace domino::sim {

namespace {

using telemetry::StreamId;

/// Single-record CSV line, byte-identical to what SaveDataset would write:
/// run the record through the public stream writer and drop the header.
template <typename Rec>
std::string RowLine(void (*writer)(std::ostream&, const std::vector<Rec>&),
                    const Rec& r) {
  std::ostringstream os;
  writer(os, std::vector<Rec>{r});
  std::string s = os.str();
  return s.substr(s.find('\n') + 1);
}

template <typename Rec>
std::string HeaderOnly(void (*writer)(std::ostream&,
                                      const std::vector<Rec>&)) {
  std::ostringstream os;
  writer(os, std::vector<Rec>{});
  return os.str();
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void Append(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  f << bytes;
}

Time RecordTime(const telemetry::SessionDataset& ds, StreamId id,
                std::size_t i) {
  switch (id) {
    case StreamId::kDci: return ds.dci[i].time;
    case StreamId::kGnbLog: return ds.gnb_log[i].time;
    case StreamId::kPackets: return ds.packets[i].sent;
    case StreamId::kStatsUe: return ds.stats[telemetry::kUeClient][i].time;
    case StreamId::kStatsRemote:
      return ds.stats[telemetry::kRemoteClient][i].time;
  }
  return Time{0};
}

std::size_t RecordCount(const telemetry::SessionDataset& ds, StreamId id) {
  switch (id) {
    case StreamId::kDci: return ds.dci.size();
    case StreamId::kGnbLog: return ds.gnb_log.size();
    case StreamId::kPackets: return ds.packets.size();
    case StreamId::kStatsUe: return ds.stats[telemetry::kUeClient].size();
    case StreamId::kStatsRemote:
      return ds.stats[telemetry::kRemoteClient].size();
  }
  return 0;
}

std::string RecordLine(const telemetry::SessionDataset& ds, StreamId id,
                       std::size_t i) {
  switch (id) {
    case StreamId::kDci:
      return RowLine(&telemetry::WriteDciCsv, ds.dci[i]);
    case StreamId::kGnbLog:
      return RowLine(&telemetry::WriteGnbLogCsv, ds.gnb_log[i]);
    case StreamId::kPackets:
      return RowLine(&telemetry::WritePacketCsv, ds.packets[i]);
    case StreamId::kStatsUe:
      return RowLine(&telemetry::WriteStatsCsv,
                     ds.stats[telemetry::kUeClient][i]);
    case StreamId::kStatsRemote:
      return RowLine(&telemetry::WriteStatsCsv,
                     ds.stats[telemetry::kRemoteClient][i]);
  }
  return {};
}

std::string HeaderFor(StreamId id) {
  switch (id) {
    case StreamId::kDci: return HeaderOnly(&telemetry::WriteDciCsv);
    case StreamId::kGnbLog: return HeaderOnly(&telemetry::WriteGnbLogCsv);
    case StreamId::kPackets: return HeaderOnly(&telemetry::WritePacketCsv);
    case StreamId::kStatsUe:
    case StreamId::kStatsRemote:
      return HeaderOnly(&telemetry::WriteStatsCsv);
  }
  return {};
}

std::array<StreamId, telemetry::kStreamCount> AllStreams() {
  return {StreamId::kDci, StreamId::kGnbLog, StreamId::kPackets,
          StreamId::kStatsUe, StreamId::kStatsRemote};
}

}  // namespace

LiveFeedWriter::LiveFeedWriter(const telemetry::SessionDataset& ds,
                               std::string out_dir, LiveFeedOptions opts)
    : ds_(ds),
      dir_(std::move(out_dir)),
      opts_(opts),
      cursor_(ds.begin),
      end_(ds.end) {
  std::filesystem::create_directories(dir_);
  // Session identity is known up front: meta.csv is complete from the
  // first byte (same layout as SaveDataset).
  {
    std::ofstream f(dir_ + "/meta.csv", std::ios::binary | std::ios::trunc);
    CsvWriter w(f);
    w.WriteRow({"cell_name", "is_private", "begin_us", "end_us"});
    w.WriteRow({ds_.cell_name, ds_.is_private_cell ? "1" : "0",
                std::to_string(ds_.begin.micros()),
                std::to_string(ds_.end.micros())});
    w.WriteRow({"rnti_time_us", "rnti"});
    for (const auto& s : ds_.ue_rnti) {
      w.WriteRow({std::to_string(s.time.micros()), Num(s.value)});
    }
  }
  for (StreamId id : AllStreams()) {
    const std::size_t n = RecordCount(ds_, id);
    auto& order = order_[static_cast<std::size_t>(id)];
    order.resize(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return RecordTime(ds_, id, a) < RecordTime(ds_, id, b);
                     });
    std::ofstream f(dir_ + "/" + telemetry::StreamFileName(id),
                    std::ios::binary | std::ios::trunc);
    f << HeaderFor(id);
  }
}

bool LiveFeedWriter::Step() {
  if (cursor_ > end_) return false;
  const Time next = cursor_ + opts_.chunk;
  for (StreamId id : AllStreams()) {
    const std::size_t s = static_cast<std::size_t>(id);
    const auto& order = order_[s];
    std::string batch;
    while (next_[s] < order.size() &&
           RecordTime(ds_, id, order[next_[s]]) < next) {
      const std::size_t i = order[next_[s]];
      ++next_[s];
      // A stalled collector stops emitting; its records are withheld for
      // good, not deferred.
      if (RecordTime(ds_, id, i) >= opts_.stall_after[s]) continue;
      batch += RecordLine(ds_, id, i);
    }
    if (!batch.empty()) {
      Append(dir_ + "/" + telemetry::StreamFileName(id), batch);
    }
  }
  cursor_ = next;
  return cursor_ <= end_;
}

}  // namespace domino::sim
