// Two-party WebRTC call simulation over one cell profile (the paper's §3
// experimental setup): the UE client reaches its peer through the 5G uplink
// + wired leg; the peer's media returns through wired + 5G downlink. RTCP
// transport feedback rides the same legs in reverse, so reverse-path delay
// inflation reaches the pushback controller exactly as in Fig. 22.
//
// Produces a SessionDataset with all four telemetry streams, time-aligned on
// the shared simulation clock (the paper synchronised hosts via NTP).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/rng.h"
#include "mac/link.h"
#include "net/path.h"
#include "rtc/audio.h"
#include "rtc/receiver.h"
#include "rtc/sender.h"
#include "sim/cell_config.h"
#include "telemetry/dataset.h"

namespace domino::sim {

/// Default encoder ladders reproduce Table 3's asymmetry: the UE client's
/// camera feed favours 540p; the remote client sends a 360p-dominant stream.
rtc::SenderConfig DefaultUeSenderConfig();
rtc::SenderConfig DefaultRemoteSenderConfig();

struct SessionConfig {
  CellProfile profile;
  Duration duration = Seconds(60);
  std::uint64_t seed = 1;

  /// Offset of the remote host's clock vs the UE host (0 = NTP-perfect,
  /// as in the paper's setup). Applied to remote-stamped packet timestamps;
  /// telemetry::EstimateClockOffsetMs / AlignClocks undo it.
  Duration remote_clock_offset = Micros(0);

  Duration capture_interval = Millis(33);   ///< ~30 fps virtual camera.
  Duration feedback_interval = Millis(100); ///< RTCP transport feedback.
  Duration stats_interval = Millis(50);     ///< Instrumented-client stats.
  Duration gnb_log_interval = Millis(10);   ///< gNB log sampling (private).

  rtc::SenderConfig ue_sender = DefaultUeSenderConfig();
  rtc::SenderConfig remote_sender = DefaultRemoteSenderConfig();
  rtc::ReceiverConfig receiver;  ///< Used for both clients.
  rtc::AudioConfig audio;        ///< Audio stream (both directions).
};

class CallSession {
 public:
  explicit CallSession(SessionConfig cfg);
  ~CallSession();

  CallSession(const CallSession&) = delete;
  CallSession& operator=(const CallSession&) = delete;

  // --- Scenario scripting hooks (use before Run) ---------------------------
  /// Null when the profile is wired-only.
  mac::CellLink* ul_link() { return ul_link_.get(); }
  mac::CellLink* dl_link() { return dl_link_.get(); }
  rrc::RrcStateMachine* rrc() { return rrc_.get(); }
  EventQueue& queue() { return queue_; }

  // --- Post-run inspection --------------------------------------------------
  [[nodiscard]] const rtc::MediaSender& ue_sender() const {
    return *ue_sender_;
  }
  [[nodiscard]] const rtc::MediaSender& remote_sender() const {
    return *remote_sender_;
  }
  [[nodiscard]] const rtc::MediaReceiver& ue_receiver() const {
    return *ue_receiver_;
  }
  [[nodiscard]] const rtc::MediaReceiver& remote_receiver() const {
    return *remote_receiver_;
  }
  [[nodiscard]] const rtc::AudioReceiver& ue_audio() const {
    return *ue_audio_;
  }
  [[nodiscard]] const rtc::AudioReceiver& remote_audio() const {
    return *remote_audio_;
  }

  /// Runs the call to completion and returns the captured dataset.
  telemetry::SessionDataset Run();

 private:
  struct InFlight {
    telemetry::PacketRecord record;
    bool is_rtcp = false;
    bool is_audio = false;
    rtc::MediaPacket media;       ///< Valid for video packets.
    gcc::TransportFeedback fb;    ///< Valid when is_rtcp.
    std::uint64_t audio_seq = 0;  ///< Valid when is_audio.
    Time audio_capture;
  };

  std::uint64_t NewRecord(Direction dir, int bytes, bool is_rtcp,
                          std::uint64_t frame_id, Time sent);
  /// Applies the remote clock offset to remote-stamped fields and appends
  /// the record to the dataset.
  void FinalizeRecord(telemetry::PacketRecord record);
  void RouteUplink(std::uint64_t rec_id);
  void RouteDownlink(std::uint64_t rec_id);
  void OnUplinkAtGnb(std::uint64_t rec_id, Time t);
  void OnArriveAtRemote(std::uint64_t rec_id, Time t);
  void OnDownlinkAtGnb(std::uint64_t rec_id, Time t);
  void OnArriveAtUe(std::uint64_t rec_id, Time t);
  void OnDrop(std::uint64_t rec_id);

  void CaptureTickUe();
  void CaptureTickRemote();
  void AudioTick(int client);
  void FeedbackTickUe();
  void FeedbackTickRemote();
  void StatsTick();
  void GnbLogTick();
  void SampleStats(int client, Time now);

  SessionConfig cfg_;
  Rng rng_;
  EventQueue queue_;

  std::unique_ptr<phy::FrameStructure> frame_;
  std::unique_ptr<rrc::RrcStateMachine> rrc_;
  std::unique_ptr<mac::CellLink> ul_link_;
  std::unique_ptr<mac::CellLink> dl_link_;
  std::unique_ptr<net::WiredPath> wired_ul_;  ///< gNB/core -> remote peer.
  std::unique_ptr<net::WiredPath> wired_dl_;  ///< Remote peer -> gNB/core.

  std::unique_ptr<rtc::MediaSender> ue_sender_;
  std::unique_ptr<rtc::MediaSender> remote_sender_;
  std::unique_ptr<rtc::MediaReceiver> ue_receiver_;
  std::unique_ptr<rtc::MediaReceiver> remote_receiver_;
  std::unique_ptr<rtc::AudioReceiver> ue_audio_;      ///< Plays DL audio.
  std::unique_ptr<rtc::AudioReceiver> remote_audio_;  ///< Plays UL audio.
  std::array<std::uint64_t, 2> next_audio_seq_ = {0, 0};
  std::array<std::pair<long, long>, 2> last_audio_counts_ = {};

  std::map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t next_record_id_ = 1;

  /// Self-rescheduling periodic drivers (see Run). Owned here rather than
  /// by their own closures so the chain is cycle-free and dies with the
  /// session.
  std::vector<std::unique_ptr<std::function<void()>>> timers_;

  telemetry::SessionDataset ds_;
  std::array<long, 2> last_rlc_retx_ = {0, 0};
  double last_rnti_ = -1;
};

}  // namespace domino::sim
