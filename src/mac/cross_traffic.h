// Cross-traffic demand model.
//
// Commercial cells carry other users' traffic, which competes with the VCA
// client for PRBs (paper §5.1.2). Each background UE is an on-off source:
// exponentially distributed on/off periods, with a constant byte demand rate
// while on. Scenario scripts can additionally force deterministic bursts to
// reproduce specific figure traces (e.g. Fig. 13).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace domino::mac {

struct OnOffConfig {
  double mean_on_s = 0.8;     ///< Mean burst duration.
  double mean_off_s = 3.0;    ///< Mean idle gap.
  double rate_bps = 30e6;     ///< Demand rate while on (backlogged flows are
                              ///< modelled with a rate far above capacity).
};

/// One background UE. Demand is sampled per slot; the source keeps its own
/// on/off phase machine driven by the simulation clock.
class OnOffSource {
 public:
  OnOffSource(OnOffConfig cfg, std::uint32_t rnti, Rng rng);

  /// Bytes this UE wants to send in a slot covering [t, t + slot).
  int DemandBytes(Time t, Duration slot);

  [[nodiscard]] std::uint32_t rnti() const { return rnti_; }

  /// Forces the source on (resp. off) for [start, end) regardless of the
  /// stochastic phase; used by scenario scripts.
  void ForceOn(Time start, Time end);

 private:
  void AdvanceTo(Time t);

  OnOffConfig cfg_;
  std::uint32_t rnti_;
  Rng rng_;
  bool on_ = false;
  Time phase_end_{0};
  std::vector<std::pair<Time, Time>> forced_;
};

/// Aggregates several background UEs into the per-slot demand list the
/// scheduler consumes.
class CrossTrafficModel {
 public:
  CrossTrafficModel() = default;

  void AddSource(OnOffSource source) { sources_.push_back(std::move(source)); }

  struct UeDemand {
    std::uint32_t rnti;
    int bytes;
  };

  /// Per-UE demand for the slot at [t, t + slot); zero-demand UEs omitted.
  std::vector<UeDemand> Demands(Time t, Duration slot);

  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }
  OnOffSource& source(std::size_t i) { return sources_[i]; }

 private:
  std::vector<OnOffSource> sources_;
};

}  // namespace domino::mac
