#include "mac/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace domino::mac {

std::vector<int> AllocatePrbs(int total_prbs,
                              const std::vector<PrbDemand>& demands) {
  std::vector<int> alloc(demands.size(), 0);
  if (total_prbs <= 0 || demands.empty()) return alloc;

  // Water-filling over fractional shares, then round down; leftover PRBs go
  // to the UEs with the largest unmet demand (largest-remainder style).
  std::vector<double> frac(demands.size(), 0.0);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].wanted_prbs > 0 && demands[i].weight > 0) {
      active.push_back(i);
    }
  }
  double remaining = static_cast<double>(total_prbs);
  while (!active.empty() && remaining > 1e-9) {
    double weight_sum = 0;
    for (std::size_t i : active) weight_sum += demands[i].weight;
    // Find the smallest normalised unmet demand among active UEs.
    double min_fill = 1e300;
    for (std::size_t i : active) {
      double unmet = demands[i].wanted_prbs - frac[i];
      min_fill = std::min(min_fill, unmet / demands[i].weight);
    }
    double level = std::min(min_fill, remaining / weight_sum);
    for (std::size_t i : active) {
      frac[i] += level * demands[i].weight;
    }
    remaining -= level * weight_sum;
    // Drop satisfied UEs.
    std::erase_if(active, [&](std::size_t i) {
      return frac[i] >= demands[i].wanted_prbs - 1e-9;
    });
    if (level <= 0) break;  // numerical guard
  }

  int used = 0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    alloc[i] = static_cast<int>(std::floor(frac[i] + 1e-9));
    used += alloc[i];
  }
  // Distribute integer leftovers to UEs with unmet demand, largest fractional
  // remainder first.
  int leftovers = total_prbs - used;
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return (frac[a] - std::floor(frac[a])) > (frac[b] - std::floor(frac[b]));
  });
  for (std::size_t i : order) {
    if (leftovers <= 0) break;
    if (alloc[i] < demands[i].wanted_prbs) {
      ++alloc[i];
      --leftovers;
    }
  }
  return alloc;
}

}  // namespace domino::mac
