// PRB allocation among competing UEs.
//
// The gNB scheduler divides a slot's PRBs between the UE under test and any
// active cross-traffic UEs using weighted max-min fairness (water-filling).
// This captures the behaviour the paper measures in §5.1.2: a backlogged
// cross-traffic UE takes its fair share, shrinking the PRBs (and hence TBS)
// available to the VCA client.
#pragma once

#include <vector>

namespace domino::mac {

struct PrbDemand {
  int wanted_prbs = 0;  ///< PRBs this UE could use this slot.
  double weight = 1.0;  ///< Scheduler weight (all 1.0 = plain max-min).
};

/// Allocates `total_prbs` across `demands` with weighted max-min fairness.
/// Returns per-UE allocations in the same order. Unsatisfied demand of one
/// UE frees capacity for others (water-filling); the sum of allocations never
/// exceeds total_prbs and never exceeds any UE's demand.
std::vector<int> AllocatePrbs(int total_prbs,
                              const std::vector<PrbDemand>& demands);

}  // namespace domino::mac
