// Outer-Loop Link Adaptation (OLLA).
//
// CQI reports are coarse (2 dB steps) and stale; production schedulers close
// the loop on HARQ feedback instead: every ACK nudges an SINR offset up by a
// small step, every NACK pushes it down by a large one. At convergence the
// first-transmission BLER settles at step_up / (step_up + step_down) — the
// classic 10% operating point the paper's cells target.
//
// Opt-in per link (LinkConfig::olla). The default cell profiles keep it off
// so their hand-calibrated behaviour is unchanged; the ablation bench
// (ablation_olla) quantifies the difference.
#pragma once

namespace domino::mac {

struct OllaConfig {
  bool enabled = false;
  double target_bler = 0.10;
  double step_up_db = 0.01;   ///< Offset gain per ACK.
  double min_offset_db = -10.0;
  double max_offset_db = 5.0;
};

class OuterLoopLinkAdaptation {
 public:
  explicit OuterLoopLinkAdaptation(OllaConfig cfg = {});

  /// Reports a first-transmission decode outcome.
  void OnFirstTxOutcome(bool ok);

  /// Offset (dB) to add to the reported SINR before MCS selection.
  [[nodiscard]] double offset_db() const { return offset_db_; }
  [[nodiscard]] const OllaConfig& config() const { return cfg_; }
  /// Observed first-transmission BLER so far.
  [[nodiscard]] double observed_bler() const {
    long total = acks_ + nacks_;
    return total == 0 ? 0.0 : static_cast<double>(nacks_) / total;
  }

 private:
  OllaConfig cfg_;
  double offset_db_ = 0;
  double step_down_db_;
  long acks_ = 0;
  long nacks_ = 0;
};

}  // namespace domino::mac
