// CellLink — one direction of the 5G data path between a UE and its gNB.
//
// This is the heart of the RAN substrate: it moves application packets
// through the request/grant uplink scheduling loop (or downlink queueing),
// transport-block construction with link adaptation, HARQ retransmission
// rounds, RLC recovery with head-of-line blocking, and RRC blackouts —
// emitting the same per-slot DCI telemetry an NR-Scope deployment captures.
//
// All six of the paper's root causes are produced by this class and its
// collaborators:
//   poor channel     -> low MCS + PRB cap     -> small TBS -> queue build-up
//   cross traffic    -> PRB competition        -> small TBS -> queue build-up
//   UL scheduling    -> BSR wait + grant delay -> first-byte latency
//   HARQ retx        -> +harq_rtt per attempt
//   RLC retx         -> +rlc retx delay, HoL blocking at the receiver
//   RRC transitions  -> PHY silence, RNTI change
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "mac/cross_traffic.h"
#include "mac/olla.h"
#include "phy/channel.h"
#include "phy/frame_structure.h"
#include "phy/tbs.h"
#include "rlc/rlc_am.h"
#include "rrc/rrc.h"
#include "telemetry/records.h"

namespace domino::mac {

struct LinkConfig {
  Direction dir = Direction::kUplink;
  phy::CarrierConfig carrier;

  // Uplink scheduling (ignored for downlink).
  Duration grant_delay = Millis(10);   ///< BSR -> usable grant latency
                                       ///< (5–25 ms across the paper's cells).
  int proactive_grant_bytes = 0;       ///< Per-UL-slot unconditional grant
                                       ///< (Mosolabs-style; 0 = disabled).

  // HARQ.
  Duration harq_rtt = Millis(10);      ///< NACK -> retransmission latency.
  int max_harq_retx = 4;               ///< Retransmissions before RLC recovery.
  double harq_combining_gain_db = 3.0; ///< Effective SINR gain per attempt.

  // Link adaptation.
  int mcs_offset = 0;                  ///< <0 conservative, >0 aggressive.
  Duration cqi_delay = Millis(8);      ///< Channel-report staleness: MCS is
                                       ///< chosen from the SINR this long
                                       ///< ago. At sharp fade onsets the
                                       ///< stale (optimistic) MCS fails
                                       ///< repeatedly — the path to HARQ
                                       ///< exhaustion and RLC recovery.
  double prb_cap_sinr_db = 3.0;        ///< Below this SINR the scheduler caps
  double prb_cap_frac = 0.5;           ///< the UE at this fraction of PRBs.
  int ue_max_prbs = 0;                 ///< Per-grant PRB cap (0 = no cap);
                                       ///< models heavily shared cells.
  OllaConfig olla;                     ///< Outer-loop link adaptation
                                       ///< (HARQ-feedback-driven offset).

  // Delivery.
  Duration decode_latency = Micros(500);

  // Cross traffic modelling.
  int cross_traffic_mcs = 15;          ///< Assumed MCS for other UEs.
  double cross_traffic_weight = 1.0;   ///< Scheduler weight of each other UE
                                       ///< relative to ours (PF-favoured
                                       ///< backlogged flows get > 1).
  int max_cross_dci_per_slot = 2;      ///< PDCCH capacity: at most this many
                                       ///< cross-UE assignments are visible
                                       ///< (and emitted) per slot.
};

class CellLink {
 public:
  CellLink(EventQueue& queue, const phy::FrameStructure& frame, LinkConfig cfg,
           phy::ChannelModel channel, rlc::RlcConfig rlc_cfg,
           rrc::RrcStateMachine& rrc, Rng rng);

  CellLink(const CellLink&) = delete;
  CellLink& operator=(const CellLink&) = delete;

  /// Schedules the first slot tick. Call once after wiring callbacks.
  void Start();

  /// Hands an application packet to the link's sender-side RLC buffer.
  void Enqueue(std::uint64_t packet_id, int bytes);

  /// Delivered packet (in RLC order) leaves the RAN at `time`.
  std::function<void(std::uint64_t packet_id, Time time)> on_deliver;
  /// Packet dropped at enqueue (RLC buffer overflow).
  std::function<void(std::uint64_t packet_id)> on_drop;
  /// Per-slot scheduling telemetry (our UE and cross-traffic UEs).
  std::function<void(const telemetry::DciRecord&)> on_dci;

  /// Cross-traffic sources competing on this direction.
  CrossTrafficModel& cross_traffic() { return cross_; }
  /// Scripted channel degradation episodes.
  phy::ChannelModel& channel() { return channel_; }

  // --- State accessors (gNB-log sampling, assertions in tests) -------------
  [[nodiscard]] const rlc::RlcAmEntity& rlc() const { return rlc_; }
  [[nodiscard]] double last_sinr_db() const { return channel_.current_sinr_db(); }
  [[nodiscard]] int last_mcs() const { return last_mcs_; }
  [[nodiscard]] Direction direction() const { return cfg_.dir; }
  [[nodiscard]] long harq_retx_count() const { return harq_retx_count_; }
  [[nodiscard]] long harq_exhaust_count() const { return harq_exhaust_count_; }
  [[nodiscard]] long tb_count() const { return tb_count_; }
  [[nodiscard]] const OuterLoopLinkAdaptation& olla() const { return olla_; }
  [[nodiscard]] long granted_bytes_wasted() const { return grant_waste_bytes_; }
  /// Mean BSR->grant-usable delay observed so far (ms); 0 if none.
  [[nodiscard]] double mean_grant_delay_ms() const;

 private:
  struct InFlightTb {
    std::vector<rlc::Segment> segments;
    int prbs = 0;
    int mcs = 0;
    int tbs_bytes = 0;
    int attempt = 0;  ///< 0 = initial transmission.
    int harq_process = 0;
    Time due;         ///< Earliest slot time the retransmission may use.
  };
  struct Grant {
    Time usable_from;
    long bytes;
  };

  void OnSlot(std::int64_t slot);
  void ScheduleNextSlot(std::int64_t after);
  [[nodiscard]] bool SlotMatchesDirection(std::int64_t slot) const;
  void MaybeSendBsr(Time now);
  int SelectMcs(double sinr_db) const;
  /// Transmits one TB (initial or retx); schedules its decode outcome.
  void TransmitTb(InFlightTb tb, Time slot_start, double sinr_db);
  void OnDecodeOutcome(InFlightTb tb, Time decode_time, bool ok);
  void EmitCrossTrafficDci(Time slot_start,
                           const std::vector<std::uint32_t>& rntis,
                           const std::vector<int>& prbs);

  EventQueue& queue_;
  const phy::FrameStructure& frame_;
  LinkConfig cfg_;
  phy::ChannelModel channel_;
  rlc::RlcAmEntity rlc_;
  rrc::RrcStateMachine& rrc_;
  Rng rng_;
  CrossTrafficModel cross_;
  OuterLoopLinkAdaptation olla_;

  std::deque<std::pair<Time, double>> sinr_history_;  ///< For CQI staleness.
  std::deque<InFlightTb> retx_queue_;  ///< HARQ retransmissions awaiting PRBs.
  std::deque<Grant> grants_;           ///< Issued UL grants (usable_from order).
  long granted_pool_bytes_ = 0;        ///< Sum of currently-usable grant bytes.
  long requested_bytes_ = 0;           ///< Bytes covered by BSRs already sent.
  int next_harq_process_ = 0;

  int last_mcs_ = 0;
  long harq_retx_count_ = 0;
  long harq_exhaust_count_ = 0;
  long tb_count_ = 0;
  long grant_waste_bytes_ = 0;
  long grant_delay_samples_ = 0;
  double grant_delay_sum_ms_ = 0;
  bool started_ = false;
};

}  // namespace domino::mac
