#include "mac/olla.h"

#include <algorithm>

namespace domino::mac {

OuterLoopLinkAdaptation::OuterLoopLinkAdaptation(OllaConfig cfg) : cfg_(cfg) {
  // Equilibrium: step_up * (1 - bler) = step_down * bler
  //   => step_down = step_up * (1 - target) / target.
  step_down_db_ =
      cfg_.step_up_db * (1.0 - cfg_.target_bler) / cfg_.target_bler;
}

void OuterLoopLinkAdaptation::OnFirstTxOutcome(bool ok) {
  if (ok) {
    ++acks_;
    offset_db_ += cfg_.step_up_db;
  } else {
    ++nacks_;
    offset_db_ -= step_down_db_;
  }
  offset_db_ = std::clamp(offset_db_, cfg_.min_offset_db, cfg_.max_offset_db);
}

}  // namespace domino::mac
