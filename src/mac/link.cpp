#include "mac/link.h"

#include <algorithm>
#include <utility>

#include "mac/scheduler.h"
#include "phy/mcs_table.h"

namespace domino::mac {

CellLink::CellLink(EventQueue& queue, const phy::FrameStructure& frame,
                   LinkConfig cfg, phy::ChannelModel channel,
                   rlc::RlcConfig rlc_cfg, rrc::RrcStateMachine& rrc, Rng rng)
    : queue_(queue),
      frame_(frame),
      cfg_(cfg),
      channel_(std::move(channel)),
      rlc_(rlc_cfg),
      rrc_(rrc),
      rng_(rng),
      olla_(cfg.olla) {}

void CellLink::Start() {
  if (started_) return;
  started_ = true;
  std::int64_t first = frame_.SlotIndex(queue_.now());
  if (!SlotMatchesDirection(first)) {
    first = cfg_.dir == Direction::kUplink ? frame_.NextUplinkSlot(first)
                                           : frame_.NextDownlinkSlot(first);
  }
  Time start = std::max(frame_.SlotStart(first), queue_.now());
  queue_.ScheduleAt(start, [this, first] { OnSlot(first); });
}

void CellLink::Enqueue(std::uint64_t packet_id, int bytes) {
  auto sn = rlc_.Enqueue(packet_id, bytes, queue_.now());
  if (!sn.has_value() && on_drop) on_drop(packet_id);
}

bool CellLink::SlotMatchesDirection(std::int64_t slot) const {
  return cfg_.dir == Direction::kUplink ? frame_.IsUplinkSlot(slot)
                                        : frame_.IsDownlinkSlot(slot);
}

void CellLink::ScheduleNextSlot(std::int64_t after) {
  std::int64_t next = cfg_.dir == Direction::kUplink
                          ? frame_.NextUplinkSlot(after + 1)
                          : frame_.NextDownlinkSlot(after + 1);
  queue_.ScheduleAt(frame_.SlotStart(next), [this, next] { OnSlot(next); });
}

int CellLink::SelectMcs(double sinr_db) const {
  // Standard link adaptation targets ~10% first-transmission BLER; the
  // static offset shifts toward robustness (<0) or rate (>0), and OLLA
  // (when enabled) closes the loop on actual HARQ feedback.
  double adjusted = sinr_db;
  if (cfg_.olla.enabled) adjusted += olla_.offset_db();
  int mcs = phy::McsForSinr(adjusted) + cfg_.mcs_offset;
  return std::clamp(mcs, 0, phy::kMaxMcs);
}

double CellLink::mean_grant_delay_ms() const {
  if (grant_delay_samples_ == 0) return 0.0;
  return grant_delay_sum_ms_ / static_cast<double>(grant_delay_samples_);
}

void CellLink::MaybeSendBsr(Time now) {
  long buffered = rlc_.BufferedBytes();
  long unrequested = buffered - requested_bytes_;
  if (unrequested <= 0) return;
  grants_.push_back(Grant{now + cfg_.grant_delay, unrequested});
  requested_bytes_ += unrequested;
  grant_delay_sum_ms_ += cfg_.grant_delay.millis();
  ++grant_delay_samples_;
}

void CellLink::OnSlot(std::int64_t slot) {
  Time now = frame_.SlotStart(slot);
  ScheduleNextSlot(slot);

  // RRC blackout: the PHY is completely silent; data keeps arriving in the
  // RLC buffer and drains (with a delay spike) after re-establishment.
  if (!rrc_.CanTransmit(now)) return;

  double sinr = channel_.SinrAt(now);
  // Link adaptation sees the channel through delayed CQI reports; decode
  // outcomes use the true current SINR.
  sinr_history_.emplace_back(now, sinr);
  double reported_sinr = sinr;
  Time report_time = now - cfg_.cqi_delay;
  for (auto it = sinr_history_.rbegin(); it != sinr_history_.rend(); ++it) {
    if (it->first <= report_time) {
      reported_sinr = it->second;
      break;
    }
  }
  while (sinr_history_.size() > 2 &&
         sinr_history_.front().first < report_time - Millis(50)) {
    sinr_history_.pop_front();
  }
  int mcs = SelectMcs(reported_sinr);
  last_mcs_ = mcs;

  const int total_prbs = cfg_.carrier.total_prbs;
  int used_prbs = 0;

  // 1) HARQ retransmissions take PRBs before any new data.
  while (!retx_queue_.empty() && retx_queue_.front().due <= now &&
         used_prbs + retx_queue_.front().prbs <= total_prbs) {
    InFlightTb tb = std::move(retx_queue_.front());
    retx_queue_.pop_front();
    used_prbs += tb.prbs;
    tb.due = now + cfg_.harq_rtt;  // due time should a further retx be needed
    TransmitTb(std::move(tb), now, sinr);
  }

  // 2) Uplink grant accounting: BSRs go out at UL opportunities, grants
  //    mature after the request/grant round trip.
  long proactive = 0;
  if (cfg_.dir == Direction::kUplink) {
    MaybeSendBsr(now);
    while (!grants_.empty() && grants_.front().usable_from <= now) {
      granted_pool_bytes_ += grants_.front().bytes;
      grants_.pop_front();
    }
    proactive = cfg_.proactive_grant_bytes;
  }

  // 3) New-data budget for this slot.
  long budget_bytes = cfg_.dir == Direction::kUplink
                          ? granted_pool_bytes_ + proactive
                          : rlc_.BufferedBytes();
  int avail_prbs = total_prbs - used_prbs;
  if (avail_prbs <= 0) return;

  int wanted = phy::PrbsForBytes(cfg_.carrier,
                                 static_cast<int>(std::min<long>(
                                     budget_bytes, 1 << 20)),
                                 mcs);
  if (cfg_.ue_max_prbs > 0) wanted = std::min(wanted, cfg_.ue_max_prbs);
  // Reliability-driven PRB cap for poor-channel UEs (paper §5.1.1: the
  // scheduler shrinks allocations when the channel degrades). The cap
  // tightens further in deep fades, so the PRB series visibly drops along
  // with the MCS (Fig. 12, marker 1).
  if (sinr < cfg_.prb_cap_sinr_db) {
    double frac = cfg_.prb_cap_frac;
    if (sinr < cfg_.prb_cap_sinr_db - 6.0) frac *= 0.55;
    wanted = std::min(wanted, static_cast<int>(total_prbs * frac));
  }

  // 4) Competition with cross traffic for the remaining PRBs.
  auto cross_demands = cross_.Demands(now, frame_.slot_duration());
  std::vector<PrbDemand> demands;
  demands.reserve(1 + cross_demands.size());
  demands.push_back(PrbDemand{wanted, 1.0});
  for (const auto& d : cross_demands) {
    demands.push_back(PrbDemand{
        phy::PrbsForBytes(cfg_.carrier, d.bytes, cfg_.cross_traffic_mcs),
        cfg_.cross_traffic_weight});
  }
  std::vector<int> alloc = AllocatePrbs(avail_prbs, demands);
  int our_prbs = alloc[0];

  if (on_dci) {
    // PDCCH decode capacity bounds how many cross-UE assignments per slot
    // are visible to a sniffer (and realistically scheduled).
    int emitted = 0;
    for (std::size_t i = 0;
         i < cross_demands.size() && emitted < cfg_.max_cross_dci_per_slot;
         ++i) {
      if (alloc[i + 1] <= 0) continue;
      ++emitted;
      telemetry::DciRecord rec;
      rec.time = now;
      rec.rnti = cross_demands[i].rnti;
      rec.dir = cfg_.dir;
      rec.prbs = alloc[i + 1];
      rec.mcs = cfg_.cross_traffic_mcs;
      rec.tbs_bytes = phy::TransportBlockBytes(cfg_.carrier, alloc[i + 1],
                                               cfg_.cross_traffic_mcs);
      on_dci(rec);
    }
  }

  if (our_prbs <= 0) return;
  int tbs = phy::TransportBlockBytes(cfg_.carrier, our_prbs, mcs);
  if (tbs <= 0) return;

  std::vector<rlc::Segment> segments = rlc_.PullForTb(tbs, now);
  long filled = 0;
  for (const auto& s : segments) filled += s.bytes;

  if (cfg_.dir == Direction::kUplink) {
    // Grant consumption: the slot's allocation burns proactive bytes first,
    // then the BSR-grant pool. Unfilled TB space is wasted capacity
    // (over-granting / idle proactive grants, §5.2.1).
    long consume = tbs;
    long pro_used = std::min<long>(proactive, consume);
    consume -= pro_used;
    granted_pool_bytes_ = std::max<long>(0, granted_pool_bytes_ - consume);
    requested_bytes_ = std::max<long>(0, requested_bytes_ - filled);
  }
  grant_waste_bytes_ += tbs - filled;

  if (segments.empty()) {
    // Padding-only TB (e.g. an unused proactive grant): still visible as a
    // DCI to the sniffer, but nothing to decode.
    if (on_dci) {
      telemetry::DciRecord rec;
      rec.time = now;
      rec.rnti = rrc_.rnti();
      rec.dir = cfg_.dir;
      rec.prbs = our_prbs;
      rec.mcs = mcs;
      rec.tbs_bytes = tbs;
      on_dci(rec);
    }
    return;
  }

  InFlightTb tb;
  tb.segments = std::move(segments);
  tb.prbs = our_prbs;
  tb.mcs = mcs;
  tb.tbs_bytes = tbs;
  tb.attempt = 0;
  tb.harq_process = next_harq_process_;
  next_harq_process_ = (next_harq_process_ + 1) % 16;
  tb.due = now + cfg_.harq_rtt;
  TransmitTb(std::move(tb), now, sinr);
}

void CellLink::TransmitTb(InFlightTb tb, Time slot_start, double sinr_db) {
  ++tb_count_;
  if (on_dci) {
    telemetry::DciRecord rec;
    rec.time = slot_start;
    rec.rnti = rrc_.rnti();
    rec.dir = cfg_.dir;
    rec.prbs = tb.prbs;
    rec.mcs = tb.mcs;
    rec.tbs_bytes = tb.tbs_bytes;
    rec.is_retx = tb.attempt > 0;
    rec.harq_process = tb.harq_process;
    rec.attempt = tb.attempt;
    on_dci(rec);
  }
  double bler = phy::Bler(
      tb.mcs, sinr_db + cfg_.harq_combining_gain_db * tb.attempt);
  bool ok = !rng_.Chance(bler);
  Time decode_time = slot_start + frame_.slot_duration() + cfg_.decode_latency;
  queue_.ScheduleAt(decode_time,
                    [this, tb = std::move(tb), decode_time, ok]() mutable {
                      OnDecodeOutcome(std::move(tb), decode_time, ok);
                    });
}

void CellLink::OnDecodeOutcome(InFlightTb tb, Time decode_time, bool ok) {
  if (tb.attempt == 0 && cfg_.olla.enabled) olla_.OnFirstTxOutcome(ok);
  if (ok) {
    auto delivered = rlc_.OnSegmentsReceived(tb.segments);
    if (on_deliver) {
      for (const auto& sdu : delivered) on_deliver(sdu.packet_id, decode_time);
    }
    return;
  }
  if (tb.attempt >= cfg_.max_harq_retx) {
    // HARQ gave up; RLC takes over with its (much slower) recovery.
    ++harq_exhaust_count_;
    rlc_.OnHarqExhaust(tb.segments, decode_time);
    return;
  }
  ++harq_retx_count_;
  ++tb.attempt;
  retx_queue_.push_back(std::move(tb));
}

}  // namespace domino::mac
