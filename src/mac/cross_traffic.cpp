#include "mac/cross_traffic.h"

#include <algorithm>

namespace domino::mac {

OnOffSource::OnOffSource(OnOffConfig cfg, std::uint32_t rnti, Rng rng)
    : cfg_(cfg), rnti_(rnti), rng_(rng) {
  // Start in the off phase with a random residual so sources are unsynced.
  on_ = false;
  phase_end_ = Time{0} + Seconds(rng_.ExpMean(cfg_.mean_off_s));
}

void OnOffSource::ForceOn(Time start, Time end) {
  forced_.emplace_back(start, end);
}

void OnOffSource::AdvanceTo(Time t) {
  while (phase_end_ <= t) {
    on_ = !on_;
    double mean = on_ ? cfg_.mean_on_s : cfg_.mean_off_s;
    phase_end_ += Seconds(std::max(rng_.ExpMean(mean), 1e-4));
  }
}

int OnOffSource::DemandBytes(Time t, Duration slot) {
  AdvanceTo(t);
  bool active = on_;
  for (const auto& [s, e] : forced_) {
    if (t >= s && t < e) {
      active = true;
      break;
    }
  }
  if (!active) return 0;
  double bytes = cfg_.rate_bps / 8.0 * slot.seconds();
  return std::max(1, static_cast<int>(bytes));
}

std::vector<CrossTrafficModel::UeDemand> CrossTrafficModel::Demands(
    Time t, Duration slot) {
  std::vector<UeDemand> out;
  for (auto& src : sources_) {
    int bytes = src.DemandBytes(t, slot);
    if (bytes > 0) out.push_back({src.rnti(), bytes});
  }
  return out;
}

}  // namespace domino::mac
