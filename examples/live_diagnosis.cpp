// Near-real-time diagnosis example (paper §1: operators can run Domino "on a
// continuous, near real-time basis").
//
// Simulates a call in one-second increments; after each increment the
// detector analyses only the newly completed windows and prints alerts as
// root causes emerge — the streaming workflow an operator dashboard would
// use. Also demonstrates dataset export for offline reprocessing.
//
//   $ ./examples/live_diagnosis
#include <cstdio>
#include <set>

#include "domino/streaming.h"
#include "sim/call_session.h"
#include "sim/cell_config.h"
#include "telemetry/io.h"

using namespace domino;

int main() {
  sim::SessionConfig cfg;
  cfg.profile = sim::TMobileFdd15();
  cfg.duration = Seconds(90);
  cfg.seed = 31;
  sim::CallSession session(cfg);
  // Two incidents the operator should see appear live.
  session.rrc()->ScheduleRelease(Time{0} + Seconds(30));
  auto& cross = session.dl_link()->cross_traffic();
  for (std::size_t i = 0; i < cross.source_count(); ++i) {
    cross.source(i).ForceOn(Time{0} + Seconds(60), Time{0} + Seconds(65));
  }
  telemetry::SessionDataset ds = session.Run();
  telemetry::DerivedTrace trace = telemetry::BuildDerivedTrace(ds);

  analysis::DominoConfig dcfg;
  dcfg.extract_features = false;  // chain alerts only: cheaper per window
  analysis::StreamingDetector stream(
      analysis::CausalGraph::Default(dcfg.thresholds), dcfg);

  std::printf("live diagnosis of a %0.f s call over '%s' "
              "(1 s analysis increments)\n\n",
              cfg.duration.seconds(), cfg.profile.name.c_str());

  // Alerts are deduplicated per (cause, consequence) pair per 5 s to avoid
  // spamming the console.
  std::set<std::pair<std::string, std::string>> recent;
  Time recent_reset{0};
  const auto& det = stream.detector();
  stream.on_chain = [&](const analysis::ChainInstance& ci,
                        const analysis::WindowResult&) {
    const auto& path = det.chains()[static_cast<std::size_t>(ci.chain_index)];
    std::string cause = det.graph().node(path.front()).name;
    std::string consequence = det.graph().node(path.back()).name;
    if (!recent.insert({cause, consequence}).second) return;
    std::printf("[%6.1fs] ALERT %-9s media degraded: %-20s <- root "
                "cause: %s\n",
                (ci.window_begin + dcfg.window).seconds(),
                ci.sender_client == 0 ? "UL" : "DL", consequence.c_str(),
                cause.c_str());
  };
  for (Time now = Time{0} + Seconds(5); now <= ds.end; now += Seconds(1.0)) {
    if (now - recent_reset >= Seconds(5.0)) {
      recent.clear();
      recent_reset = now;
    }
    stream.Advance(trace, now);
  }
  std::printf("\n%ld windows analysed, %ld chain instances\n",
              stream.windows_processed(), stream.chains_detected());

  // Persist the session for offline analysis / sharing.
  const char* out_dir = "live_diagnosis_trace";
  telemetry::SaveDataset(ds, out_dir);
  std::printf("\nfull cross-layer trace exported to ./%s/ "
              "(dci.csv, packets.csv, stats_*.csv, gnb_log.csv)\n",
              out_dir);
  telemetry::SessionDataset reloaded = telemetry::LoadDataset(out_dir);
  std::printf("reloaded %zu DCIs, %zu packets — ready for re-analysis\n",
              reloaded.dci.size(), reloaded.packets.size());
  return 0;
}
