// Quickstart: simulate a two-party WebRTC call over a commercial 5G cell,
// run the Domino analysis, and print what degraded the call and why.
//
//   $ ./examples/quickstart
//
// This exercises the whole public API surface:
//   sim::CallSession      — cross-layer telemetry capture (simulated cell)
//   telemetry::BuildDerivedTrace — time-aligned series for analysis
//   analysis::Detector    — sliding-window causal-chain detection
//   analysis::ComputeStatistics — Fig. 10 / Table 2 / Table 4 aggregates
#include <cstdio>

#include "domino/detector.h"
#include "domino/statistics.h"
#include "sim/call_session.h"
#include "sim/cell_config.h"

using namespace domino;

int main() {
  // 1) Capture a 60-second call over the T-Mobile FDD cell.
  sim::SessionConfig cfg;
  cfg.profile = sim::TMobileFdd15();
  cfg.duration = Seconds(60);
  cfg.seed = 7;
  std::printf("Simulating a 60 s WebRTC call over '%s'...\n",
              cfg.profile.name.c_str());
  sim::CallSession session(cfg);
  telemetry::SessionDataset ds = session.Run();

  std::printf("Captured %zu DCI records, %zu packets, %zu+%zu stats rows\n",
              ds.dci.size(), ds.packets.size(), ds.stats[0].size(),
              ds.stats[1].size());

  // 2) Run Domino over the trace with the paper's default causal graph.
  telemetry::DerivedTrace trace = telemetry::BuildDerivedTrace(ds);
  analysis::DominoConfig dcfg;
  analysis::Detector detector(analysis::CausalGraph::Default(dcfg.thresholds),
                              dcfg);
  analysis::AnalysisResult result = detector.Analyze(trace);

  auto chains = result.AllChains();
  std::printf("\nAnalyzed %zu windows (W=%.1fs, step %.1fs): %zu causal "
              "chain instances\n",
              result.windows.size(), dcfg.window.seconds(),
              dcfg.step.seconds(), chains.size());

  // 3) Print the aggregate picture.
  analysis::ChainStatistics stats =
      analysis::ComputeStatistics(result, detector.graph());
  std::printf("\n-- Occurrence frequency (per minute) --\n%s",
              analysis::FormatOccurrence(stats).c_str());
  std::printf("\n-- P(cause | consequence) --\n%s",
              analysis::FormatConditionalTable(stats).c_str());

  // 4) Show a few concrete chains with their windows.
  std::printf("\n-- Example chain instances --\n");
  int shown = 0;
  for (const auto& ci : chains) {
    if (shown >= 5) break;
    std::printf("t=%6.1fs  [%s media]  %s\n", ci.window_begin.seconds(),
                ci.sender_client == 0 ? "UE uplink" : "remote downlink",
                FormatChain(detector.graph(),
                            detector.chains()[static_cast<std::size_t>(
                                ci.chain_index)])
                    .c_str());
    ++shown;
  }
  if (chains.empty()) {
    std::printf("(no chains detected — try a longer run or another seed)\n");
  }
  return 0;
}
