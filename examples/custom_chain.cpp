// Extensibility example (paper §4.2, Fig. 11): define a brand-new event and
// causal chain from a text configuration, extend the default graph, run the
// detector — and emit the equivalent standalone Python module.
//
//   $ ./examples/custom_chain
#include <cstdio>

#include "domino/codegen.h"
#include "domino/config_parser.h"
#include "domino/detector.h"
#include "sim/call_session.h"
#include "sim/cell_config.h"

using namespace domino;

int main() {
  // 1) A user-authored configuration: a "severe delay surge" event in the
  //    expression DSL and two chains connecting it into the graph.
  const std::string config_text = R"(
# Severe forward-path delay: above 250 ms and still trending upward.
event delay_surge: max(fwd.owd_ms) > 250 and trend_up(fwd.owd_ms)

# Audio degradation proxy: concealment implies jitter-buffer starvation.
event audio_degraded: max(receiver.jitter_buffer_ms) < 15 and count(receiver.jitter_buffer_ms) > 0

chain surge_starves_buffer: harq_retx -> delay_surge -> jitter_buffer_drain
chain surge_degrades_audio: poor_channel -> tbs_drop -> delay_surge -> audio_degraded
)";
  std::printf("--- user configuration ---\n%s\n", config_text.c_str());

  analysis::DominoConfigFile parsed =
      analysis::ParseConfigText(config_text);
  std::printf("parsed %zu custom events, %zu chains\n\n",
              parsed.events.size(), parsed.chains.size());

  // 2) Extend the paper's default graph with the new chains.
  analysis::EventThresholds thresholds;
  analysis::CausalGraph graph = analysis::CausalGraph::Default(thresholds);
  std::size_t before = graph.EnumerateChains().size();
  analysis::ExtendGraph(graph, parsed, thresholds);
  std::printf("causal graph: %zu -> %zu chains after extension\n", before,
              graph.EnumerateChains().size());

  // 3) Capture a session with a scripted deep fade and run the extended
  //    detector over it.
  sim::SessionConfig scfg;
  scfg.profile = sim::Amarisoft();
  scfg.duration = Seconds(40);
  scfg.seed = 12;
  sim::CallSession session(scfg);
  session.ul_link()->channel().AddEpisode(
      phy::ChannelEpisode{Time{0} + Seconds(20), Time{0} + Seconds(23),
                          -10.0});
  telemetry::SessionDataset ds = session.Run();
  telemetry::DerivedTrace trace = telemetry::BuildDerivedTrace(ds);

  analysis::Detector detector(std::move(graph), analysis::DominoConfig{});
  analysis::AnalysisResult result = detector.Analyze(trace);

  std::printf("\n--- detected chains involving custom nodes ---\n");
  int shown = 0;
  for (const auto& ci : result.AllChains()) {
    const auto& path =
        detector.chains()[static_cast<std::size_t>(ci.chain_index)];
    std::string text = FormatChain(detector.graph(), path);
    if (text.find("delay_surge") == std::string::npos &&
        text.find("audio_degraded") == std::string::npos) {
      continue;
    }
    if (shown++ < 8) {
      std::printf("t=%5.1fs  %s\n", ci.window_begin.seconds(), text.c_str());
    }
  }
  if (shown == 0) {
    std::printf("(none this run — the fade may have been absorbed; try "
                "another seed)\n");
  } else {
    std::printf("(%d instances total)\n", shown);
  }

  // 4) Emit the standalone Python module for the same configuration.
  std::string python = analysis::GeneratePython(parsed, thresholds);
  std::printf("\n--- generated Python module: %zu bytes; first lines ---\n",
              python.size());
  std::printf("%.300s...\n", python.c_str());
  return 0;
}
