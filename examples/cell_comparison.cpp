// Cell comparison example: run identical calls over all four modelled 5G
// cells plus the wired baseline, and print a side-by-side report of network
// QoS, application QoE, and Domino's root-cause profile for each — the view
// a researcher would use to choose a deployment or debug a cell.
//
//   $ ./examples/cell_comparison
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "domino/detector.h"
#include "domino/mitigation.h"
#include "domino/statistics.h"
#include "sim/call_session.h"
#include "sim/cell_config.h"

using namespace domino;

namespace {

struct CellReport {
  std::string name;
  double ul_p50 = 0, ul_p99 = 0, dl_p50 = 0, dl_p99 = 0;
  double ul_bitrate_mbps = 0, freeze_s = 0;
  std::string top_cause = "-";
  std::string advice = "-";
};

CellReport Evaluate(const sim::CellProfile& profile) {
  sim::SessionConfig cfg;
  cfg.profile = profile;
  cfg.duration = Seconds(90);
  cfg.seed = 19;
  sim::CallSession session(cfg);
  telemetry::SessionDataset ds = session.Run();

  CellReport r;
  r.name = profile.name;
  std::vector<double> ul, dl;
  for (const auto& p : ds.packets) {
    if (p.is_rtcp || p.lost()) continue;
    (p.dir == Direction::kUplink ? ul : dl)
        .push_back(p.one_way_delay().millis());
  }
  r.ul_p50 = Percentile(ul, 50);
  r.ul_p99 = Percentile(ul, 99);
  r.dl_p50 = Percentile(dl, 50);
  r.dl_p99 = Percentile(dl, 99);

  std::vector<double> tgt;
  double frozen_ticks = 0;
  for (const auto& s : ds.stats[telemetry::kUeClient]) {
    tgt.push_back(s.target_bitrate_bps);
    if (s.frozen) frozen_ticks += 1;
  }
  r.ul_bitrate_mbps = Percentile(tgt, 50) / 1e6;
  r.freeze_s = frozen_ticks * 0.05;

  // Root-cause profile via Domino.
  analysis::DominoConfig dcfg;
  analysis::Detector det(analysis::CausalGraph::Default(dcfg.thresholds),
                         dcfg);
  auto result = det.Analyze(telemetry::BuildDerivedTrace(ds));
  auto stats = analysis::ComputeStatistics(result, det.graph());
  auto advice = analysis::AdviseMitigations(result, det);
  if (!advice.empty()) r.advice = advice.front().action;
  // Top cause by total conditional attribution.
  double best = 0;
  for (std::size_t c = 0; c < stats.causes.size(); ++c) {
    double total = 0;
    for (const auto& row : stats.conditional) total += row[c];
    // UL scheduling is ubiquitous background; prefer specific causes.
    if (stats.causes[c] == "ul_scheduling") total *= 0.5;
    if (total > best) {
      best = total;
      r.top_cause = stats.causes[c];
    }
  }
  return r;
}

}  // namespace

int main() {
  std::printf("comparing a 90 s WebRTC call across deployments...\n\n");
  TextTable table({"Cell", "UL p50/p99 (ms)", "DL p50/p99 (ms)",
                   "UL target (Mbps)", "freeze (s)", "top root cause",
                   "advised action"});
  std::vector<sim::CellProfile> profiles = sim::AllCells();
  profiles.push_back(sim::WiredBaseline());
  for (const auto& profile : profiles) {
    CellReport r = Evaluate(profile);
    char delay_ul[48], delay_dl[48];
    std::snprintf(delay_ul, sizeof(delay_ul), "%.0f / %.0f", r.ul_p50,
                  r.ul_p99);
    std::snprintf(delay_dl, sizeof(delay_dl), "%.0f / %.0f", r.dl_p50,
                  r.dl_p99);
    table.AddRow({r.name, delay_ul, delay_dl,
                  TextTable::Num(r.ul_bitrate_mbps, 2),
                  TextTable::Num(r.freeze_s, 1), r.top_cause, r.advice});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nReading guide: the wired row is the floor; commercial cells "
              "add cross-traffic and RRC-induced tails, private cells expose "
              "channel quality directly (see DESIGN.md experiment index).\n");
  return 0;
}
