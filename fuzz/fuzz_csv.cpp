// Fuzz target: the tolerant CSV stream readers (telemetry/io.h).
//
// The first input byte selects the reader; the rest is the CSV text.
// Budgets are shrunk so every InputLimits path (long line, field overflow,
// record cap) is reachable within tiny inputs, keeping runs fast.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/parse.h"
#include "telemetry/io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  using namespace domino;
  using namespace domino::telemetry;
  InputLimits lim;
  lim.max_line_bytes = 4096;
  lim.max_fields = 64;
  lim.max_records = 10'000;
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);
  std::istringstream is(text);
  ReadStats stats;
  switch (data[0] % 5) {
    case 0: ReadDciCsv(is, &stats, lim); break;
    case 1: ReadPacketCsv(is, &stats, lim); break;
    case 2: ReadStatsCsv(is, &stats, lim); break;
    case 3: ReadGnbLogCsv(is, &stats, lim); break;
    case 4: {
      SessionDataset ds;
      ReadMetaCsv(is, ds, stats, lim);
      break;
    }
  }
  return 0;
}
