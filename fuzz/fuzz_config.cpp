// Fuzz target: the config DSL front-end — checked config/expression
// parsing plus the full lint pipeline, exactly the path `domino lint` and
// `domino analyze --config` run on a user-supplied file.
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/parse.h"
#include "domino/config_parser.h"
#include "domino/lint/lint.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Checked parse under tight budgets (config bytes, defs, expr depth and
  // nodes) so the DL006/DL213 fail-closed paths are exercised constantly.
  domino::InputLimits lim;
  lim.max_config_bytes = 1 << 16;
  lim.max_config_defs = 128;
  lim.max_expr_nodes = 1024;
  lim.max_expr_depth = 48;
  domino::analysis::lint::DiagnosticSink sink;
  domino::analysis::ParseConfigChecked(text, sink, lim);

  // The shipped front-end with default limits: parse + semantic lint +
  // graph checks, diagnostics rendered into the JSON formatter's input.
  domino::analysis::lint::LintConfigText(text, {});
  return 0;
}
