// Fuzz target: the live checkpoint reader (domino/runtime/checkpoint.h).
//
// Each input is parsed twice: once raw (exercising checksum rejection of
// torn/corrupted writes) and once wrapped in a freshly computed checksum
// (so the field parser behind the checksum gate is reached too).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/parse.h"
#include "domino/runtime/checkpoint.h"

namespace {

// FNV-1a, duplicated from checkpoint.cpp where it is file-private. Keeping
// the harness's copy in sync matters only for coverage depth, not
// correctness: a mismatch just means the wrapped variant stops at the
// checksum gate like the raw one.
std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace domino;
  using namespace domino::runtime;
  const std::string text(reinterpret_cast<const char*>(data), size);
  InputLimits lim;
  lim.max_checkpoint_bytes = 1 << 18;
  lim.max_checkpoint_entries = 4096;

  LiveCheckpoint cp;
  std::string error;
  CheckpointFailure failure = CheckpointFailure::kNone;
  ParseCheckpoint(text, "", &cp, &error, &failure, lim);
  ParseCheckpoint(text, "fuzz-fingerprint", &cp, &error, &failure, lim);

  std::string body = text;
  if (!body.empty() && body.back() != '\n') body += '\n';
  const std::string sealed = body + "checksum " + Hex64(Fnv1a(body)) + "\n";
  ParseCheckpoint(sealed, "", &cp, &error, &failure, lim);
  return 0;
}
