// Fuzz target: the `domino` argv front-end (tools/domino_main.h).
//
// Input bytes are split on '\n' into an argv vector and fed to DominoMain
// in dry-run mode: every subcommand parses and validates its flags with
// the strict layer, then returns before touching the filesystem. Any
// uncaught exception or abort from a flag value is a finding.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "domino_main.h"

namespace {

// Nearly every mutated argv is a usage error; silence the diagnostic spam
// so mutation runs are not I/O-bound. Crashes surface via signals, not
// stderr.
const bool g_quiet = [] {
  return std::freopen("/dev/null", "w", stderr) != nullptr;
}();

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)g_quiet;
  std::vector<std::string> args;
  std::string cur;
  for (std::size_t i = 0; i < size && args.size() < 64; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n' || c == '\0') {
      args.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) args.push_back(cur);

  domino::cli::MainOptions mo;
  mo.dry_run = true;
  domino::cli::DominoMain(std::move(args), mo);
  return 0;
}
