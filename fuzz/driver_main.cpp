// Standalone driver for the fuzz harnesses on toolchains without a
// libFuzzer runtime (gcc). It mirrors the libFuzzer CLI closely enough
// that the same ctest command line works either way:
//
//   fuzz_x -runs=0 DIR...   replay every file under DIR (regression mode)
//   fuzz_x -runs=N DIR...   additionally run N deterministic random
//                           mutations of the corpus (smoke fuzzing)
//   fuzz_x FILE...          replay the named files
//
// Unknown -flags are ignored so a libFuzzer invocation pasted from CI does
// not break. Mutations use SplitMix64 seeded by -seed=N (default 1): a
// given (corpus, seed, runs) triple always replays the same inputs, so a
// crash found here reproduces without keeping the mutated bytes around —
// though the crashing input is also dumped to crash-<n>.bin for committing
// as a regression fixture.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

constexpr std::size_t kMaxInputBytes = 1 << 16;

std::uint64_t g_rng = 1;

std::uint64_t Rand() {
  std::uint64_t z = (g_rng += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool ReadFile(const std::filesystem::path& p, std::vector<std::uint8_t>* out) {
  std::ifstream f(p, std::ios::binary);
  if (!f) return false;
  out->assign(std::istreambuf_iterator<char>(f),
              std::istreambuf_iterator<char>());
  if (out->size() > kMaxInputBytes) out->resize(kMaxInputBytes);
  return true;
}

/// One random edit: bit flip, byte overwrite, truncate, insert, or
/// duplicate a chunk. Mutated inputs stay under kMaxInputBytes.
void MutateOnce(std::vector<std::uint8_t>* buf) {
  if (buf->empty()) {
    buf->push_back(static_cast<std::uint8_t>(Rand()));
    return;
  }
  const std::size_t pos = Rand() % buf->size();
  switch (Rand() % 5) {
    case 0:
      (*buf)[pos] ^= static_cast<std::uint8_t>(1u << (Rand() % 8));
      break;
    case 1:
      (*buf)[pos] = static_cast<std::uint8_t>(Rand());
      break;
    case 2:
      buf->resize(pos + 1);
      break;
    case 3:
      if (buf->size() < kMaxInputBytes) {
        buf->insert(buf->begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<std::uint8_t>(Rand()));
      }
      break;
    case 4: {
      const std::size_t len = 1 + Rand() % 64;
      const std::size_t n =
          std::min(len, std::min(buf->size() - pos,
                                 kMaxInputBytes - buf->size()));
      std::vector<std::uint8_t> chunk(buf->begin() + static_cast<std::ptrdiff_t>(pos),
                                      buf->begin() + static_cast<std::ptrdiff_t>(pos + n));
      buf->insert(buf->begin() + static_cast<std::ptrdiff_t>(pos),
                  chunk.begin(), chunk.end());
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 0;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "-runs=", 6) == 0) {
      runs = std::strtol(a + 6, nullptr, 10);
    } else if (std::strncmp(a, "-seed=", 6) == 0) {
      g_rng = std::strtoull(a + 6, nullptr, 10);
    } else if (a[0] == '-' && a[1] != '\0') {
      // Ignore libFuzzer flags we do not implement.
    } else {
      inputs.emplace_back(a);
    }
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  long replayed = 0;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& e :
           std::filesystem::recursive_directory_iterator(in, ec)) {
        if (e.is_regular_file()) files.push_back(e.path());
      }
      // Directory iteration order is filesystem-dependent: sort so replay
      // order (and therefore the mutation stream) is reproducible.
      std::sort(files.begin(), files.end());
      for (const auto& p : files) {
        std::vector<std::uint8_t> buf;
        if (!ReadFile(p, &buf)) continue;
        std::printf("driver: replay %s (%zu bytes)\n", p.c_str(), buf.size());
        LLVMFuzzerTestOneInput(buf.data(), buf.size());
        ++replayed;
        corpus.push_back(std::move(buf));
      }
    } else {
      std::vector<std::uint8_t> buf;
      if (!ReadFile(in, &buf)) {
        std::fprintf(stderr, "driver: cannot read %s\n", in.c_str());
        return 1;
      }
      std::printf("driver: replay %s (%zu bytes)\n", in.c_str(), buf.size());
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
      ++replayed;
      corpus.push_back(std::move(buf));
    }
  }

  if (runs > 0 && corpus.empty()) corpus.push_back({});
  for (long r = 0; r < runs; ++r) {
    std::vector<std::uint8_t> buf = corpus[Rand() % corpus.size()];
    const std::size_t edits = 1 + Rand() % 8;
    for (std::size_t e = 0; e < edits; ++e) MutateOnce(&buf);
    // Persist before running: if the harness crashes the process, the
    // input that killed it is already on disk for triage.
    {
      std::ofstream f("crash-candidate.bin",
                      std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    }
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }
  std::remove("crash-candidate.bin");
  std::printf("driver: done (%ld replayed, %ld mutated, 0 crashes)\n",
              replayed, runs);
  return 0;
}
