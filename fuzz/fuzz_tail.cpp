// Fuzz target: the tailing dataset reader (telemetry/tail.h).
//
// The input is one stream file served in two appends: the first half is
// visible on poll 1, the full content on poll 2. That drives the
// partial-tail deferral and byte-offset bookkeeping — the machinery the
// kill-and-resume determinism contract rests on — not just batch parsing.
// A fresh reader then replays to the final cursor, checking the resume
// path against the same bytes.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/parse.h"
#include "telemetry/tail.h"

namespace {

const std::string& TempDir() {
  static const std::string dir = [] {
    char tmpl[] = "/tmp/domino_fuzz_tail_XXXXXX";
    const char* d = mkdtemp(tmpl);
    return std::string(d != nullptr ? d : ".");
  }();
  return dir;
}

void WriteBytes(const std::string& path, const std::uint8_t* data,
                std::size_t size, bool append) {
  std::ofstream f(path, std::ios::binary |
                            (append ? std::ios::app : std::ios::trunc));
  f.write(reinterpret_cast<const char*>(data),
          static_cast<std::streamsize>(size));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  using namespace domino;
  using namespace domino::telemetry;
  const auto id = static_cast<StreamId>(data[0] % kStreamCount);
  const std::string path =
      TempDir() + "/" + StreamFileName(id);

  const std::uint8_t* body = data + 1;
  const std::size_t body_size = size - 1;
  const std::size_t half = body_size / 2;

  TailLimits lim;
  lim.limit = Time{1'000'000'000'000};  // far future: stop rule inert
  lim.max_jump = Duration{1'000'000'000'000};
  lim.input.max_line_bytes = 4096;
  lim.input.max_fields = 64;

  WriteBytes(path, body, half, /*append=*/false);
  TailingDatasetReader reader(TempDir());
  SessionDataset ds;
  reader.Poll(id, ds, lim);

  WriteBytes(path, body + half, body_size - half, /*append=*/true);
  reader.Poll(id, ds, lim);

  const TailCursor cur = reader.cursor(id);
  TailingDatasetReader resumed(TempDir());
  SessionDataset ds2;
  try {
    resumed.ReplayTo(id, ds2, cur, Time{0}, lim.input);
  } catch (const std::runtime_error&) {
    // ReplayTo throws by contract when the file is shorter than the
    // cursor; cannot happen here but a harness never trusts that.
  }
  return 0;
}
