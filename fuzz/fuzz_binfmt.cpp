// Fuzz target: the strict binary telemetry reader (telemetry/binfmt.h).
//
// The input bytes are the whole .dtb image, parsed through the same entry
// the mmap loader uses (null keepalive forces the copying column path, the
// common case for hostile input that never round-trips through our writer).
// Budgets are shrunk so the record-cap rejection path is reachable from
// tiny inputs. The parsed dataset is re-serialized when accepted, which
// exercises the writer against every mutation that survives validation.
#include <cstddef>
#include <cstdint>

#include "common/parse.h"
#include "telemetry/binfmt.h"
#include "telemetry/io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace domino;
  using namespace domino::telemetry;
  InputLimits lim;
  lim.max_records = 10'000;
  SessionDataset ds;
  ReadStats stats;
  if (ParseDatasetBinary(reinterpret_cast<const std::byte*>(data), size,
                         nullptr, ds, stats, lim)) {
    // Accepted images must survive a lossless write-back.
    (void)SerializeDatasetBinary(ds);
  }
  return 0;
}
